"""Tests for repro.graphs.paths and repro.graphs.properties."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.graphs.generators import star_mobility_graph
from repro.graphs.grid import grid_graph
from repro.graphs.paths import (
    PathFamily,
    edge_paths,
    shortest_path_family,
    waypoint_path_family,
)
from repro.graphs.properties import (
    average_point_congestion,
    degree_regularity,
    diameter,
    is_connected,
    max_point_congestion,
    path_family_regularity,
)


@pytest.fixture
def square_cycle():
    """A 4-cycle mobility graph labelled 0..3."""
    return nx.cycle_graph(4)


class TestPathFamilyValidation:
    def test_valid_family(self, square_cycle):
        family = PathFamily(square_cycle, [(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2), (3, 0), (0, 3)])
        assert len(family) == 8

    def test_rejects_short_path(self, square_cycle):
        with pytest.raises(ValueError, match="two points"):
            PathFamily(square_cycle, [(0,)])

    def test_rejects_unknown_point(self, square_cycle):
        with pytest.raises(ValueError, match="not in the mobility graph"):
            PathFamily(square_cycle, [(0, 99)])

    def test_rejects_non_adjacent_step(self, square_cycle):
        with pytest.raises(ValueError, match="not adjacent"):
            PathFamily(square_cycle, [(0, 2)])

    def test_rejects_revisiting_path(self, square_cycle):
        with pytest.raises(ValueError, match="revisits"):
            PathFamily(square_cycle, [(0, 1, 0, 3), (3, 0)])

    def test_allows_closed_tour(self, square_cycle):
        family = PathFamily(square_cycle, [(0, 1, 2, 3, 0)])
        assert family.paths == ((0, 1, 2, 3, 0),)

    def test_rejects_empty_family(self, square_cycle):
        with pytest.raises(ValueError, match="at least one path"):
            PathFamily(square_cycle, [])

    def test_rejects_broken_chaining(self, square_cycle):
        # A path ends at 2, but no feasible path starts at 2.
        with pytest.raises(ValueError, match="chaining"):
            PathFamily(square_cycle, [(0, 1, 2), (0, 3)])


class TestPathFamilyQueries:
    def test_paths_from(self, square_cycle):
        family = PathFamily(square_cycle, [(0, 1), (1, 0), (0, 3), (3, 0)])
        assert set(family.paths_from(0)) == {(0, 1), (0, 3)}
        assert family.paths_from(2) == ()

    def test_passes_through_counts_non_start_points(self, square_cycle):
        family = PathFamily(square_cycle, [(0, 1, 2), (2, 1, 0), (0, 3), (3, 0)])
        # Point 1 is traversed by both long paths; point 0 is the end of two paths.
        assert family.passes_through(1) == 2
        assert family.passes_through(0) == 2
        assert family.passes_through(3) == 1

    def test_congestion_profile_covers_all_points(self, square_cycle):
        family = PathFamily(square_cycle, [(0, 1), (1, 0)])
        profile = family.congestion_profile()
        assert set(profile) == set(square_cycle.nodes())
        assert profile[2] == 0

    def test_total_states(self, square_cycle):
        family = PathFamily(square_cycle, [(0, 1, 2), (2, 1, 0)])
        # Each path contributes len - 1 = 2 states.
        assert family.total_states() == 4

    def test_reversibility(self, square_cycle):
        reversible = PathFamily(square_cycle, [(0, 1), (1, 0)])
        assert reversible.is_reversible()
        irreversible = PathFamily(square_cycle, [(0, 1, 2), (2, 3, 0)])
        assert not irreversible.is_reversible()

    def test_regularity_of_uniform_family(self, square_cycle):
        family = PathFamily(
            square_cycle,
            [(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2), (3, 0), (0, 3)],
        )
        assert family.regularity() == pytest.approx(1.0)

    def test_is_delta_regular(self, square_cycle):
        family = PathFamily(square_cycle, [(0, 1), (1, 0)])
        assert family.is_delta_regular(4.0)
        assert not family.is_delta_regular(1.0)

    def test_is_delta_regular_invalid_delta(self, square_cycle):
        family = PathFamily(square_cycle, [(0, 1), (1, 0)])
        with pytest.raises(ValueError):
            family.is_delta_regular(0.5)


class TestEdgePaths:
    def test_both_orientations(self, small_grid_graph):
        family = edge_paths(small_grid_graph)
        assert len(family) == 2 * small_grid_graph.number_of_edges()
        assert family.is_reversible()

    def test_congestion_equals_degree(self, small_grid_graph):
        family = edge_paths(small_grid_graph)
        for node in small_grid_graph.nodes():
            assert family.passes_through(node) == small_grid_graph.degree(node)

    def test_edgeless_graph_rejected(self):
        graph = nx.Graph()
        graph.add_nodes_from([0, 1])
        with pytest.raises(ValueError):
            edge_paths(graph)


class TestShortestPathFamily:
    def test_all_pairs_count(self):
        graph = grid_graph(3)
        family = shortest_path_family(graph)
        pairs = 9 * 8 // 2
        assert len(family) == 2 * pairs

    def test_reversible(self):
        family = shortest_path_family(grid_graph(3))
        assert family.is_reversible()

    def test_paths_are_shortest(self):
        graph = grid_graph(3)
        family = shortest_path_family(graph)
        for path in family:
            assert len(path) - 1 == nx.shortest_path_length(graph, path[0], path[-1])

    def test_restricted_pairs(self):
        graph = grid_graph(3)
        family = shortest_path_family(graph, pairs=[((0, 0), (2, 2)), ((2, 2), (0, 0))])
        assert len(family) == 2  # duplicate unordered pair collapses

    def test_identical_pair_rejected(self):
        with pytest.raises(ValueError):
            shortest_path_family(grid_graph(3), pairs=[((0, 0), (0, 0))])

    def test_disconnected_graph_rejected(self):
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            shortest_path_family(graph)

    def test_waypoint_alias(self):
        graph = grid_graph(3)
        assert len(waypoint_path_family(graph)) == len(shortest_path_family(graph))


class TestProperties:
    def test_diameter_grid(self):
        assert diameter(grid_graph(4)) == 6

    def test_diameter_single_node(self):
        assert diameter(grid_graph(1)) == 0

    def test_diameter_disconnected_raises(self):
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            diameter(graph)

    def test_degree_regularity_grid(self):
        assert degree_regularity(grid_graph(4)) == pytest.approx(2.0)

    def test_degree_regularity_regular_graph(self):
        assert degree_regularity(nx.cycle_graph(6)) == pytest.approx(1.0)

    def test_degree_regularity_isolated_raises(self):
        graph = nx.Graph()
        graph.add_nodes_from([0, 1])
        graph.add_edge(0, 1)
        graph.add_node(2)
        with pytest.raises(ValueError):
            degree_regularity(graph)

    def test_path_family_regularity_star_is_high(self):
        star = star_mobility_graph(8)
        family = shortest_path_family(star)
        # Every leaf-to-leaf shortest path passes through the hub.
        assert path_family_regularity(family) > 3.0

    def test_congestion_statistics(self):
        family = edge_paths(grid_graph(3))
        assert max_point_congestion(family) == 4
        assert average_point_congestion(family) == pytest.approx(
            2 * grid_graph(3).number_of_edges() / 9
        )

    def test_is_connected(self):
        assert is_connected(grid_graph(3))
        assert not is_connected(nx.Graph())
        disconnected = nx.Graph()
        disconnected.add_edges_from([(0, 1), (2, 3)])
        assert not is_connected(disconnected)
