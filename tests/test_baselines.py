"""Tests for repro.baselines (prior bounds, meeting times, lower bounds)."""

from __future__ import annotations

import math

import networkx as nx
import pytest

from repro.baselines.edge_meg_bound import (
    bound_comparison,
    classic_edge_meg_prior_bound,
    general_bound_is_tight,
)
from repro.baselines.lower_bounds import (
    diameter_lower_bound,
    geometric_lower_bound,
    sparse_waypoint_lower_bound,
)
from repro.baselines.meeting_time import (
    expected_meeting_time,
    hitting_time_matrix,
    max_hitting_time,
    meeting_time_bound,
)
from repro.graphs.grid import augmented_grid_graph, grid_graph


class TestPriorEdgeMegBound:
    def test_formula(self):
        n, p = 100, 0.05
        assert classic_edge_meg_prior_bound(n, p) == pytest.approx(
            math.log2(100) / math.log2(1 + 5.0)
        )

    def test_p_zero_infinite(self):
        assert classic_edge_meg_prior_bound(100, 0.0) == float("inf")

    def test_decreasing_in_p(self):
        assert classic_edge_meg_prior_bound(100, 0.001) > classic_edge_meg_prior_bound(
            100, 0.1
        )

    def test_invalid(self):
        with pytest.raises(ValueError):
            classic_edge_meg_prior_bound(0, 0.5)
        with pytest.raises(ValueError):
            classic_edge_meg_prior_bound(10, 1.5)

    def test_tight_region_predicate(self):
        assert general_bound_is_tight(100, p=0.001, q=0.5)  # q >= n p = 0.1
        assert not general_bound_is_tight(100, p=0.01, q=0.5)  # n p = 1 > 0.5

    def test_bound_comparison_row(self):
        row = bound_comparison(100, p=0.001, q=0.5)
        assert row["tight_region"] is True
        assert row["prior_bound"] > 0
        assert row["general_bound"] > 0
        assert row["ratio"] == pytest.approx(row["general_bound"] / row["prior_bound"])


class TestLowerBounds:
    def test_diameter(self):
        assert diameter_lower_bound(7) == 7.0
        with pytest.raises(ValueError):
            diameter_lower_bound(-1)

    def test_geometric(self):
        assert geometric_lower_bound(10.0, 1.0, 1.0) == 5.0
        with pytest.raises(ValueError):
            geometric_lower_bound(0.0, 1.0, 1.0)

    def test_sparse_waypoint(self):
        assert sparse_waypoint_lower_bound(100, 2.0) == pytest.approx(5.0)
        with pytest.raises(ValueError):
            sparse_waypoint_lower_bound(0, 1.0)


class TestHittingTimes:
    def test_path_graph_known_values(self):
        # For a path on 2 nodes, hitting time between the two endpoints is 1.
        hitting, nodes = hitting_time_matrix(nx.path_graph(2))
        assert hitting[0, 1] == pytest.approx(1.0)
        assert hitting[1, 0] == pytest.approx(1.0)

    def test_diagonal_zero(self):
        hitting, _ = hitting_time_matrix(nx.cycle_graph(5))
        assert all(hitting[i, i] == 0.0 for i in range(5))

    def test_cycle_symmetry(self):
        hitting, nodes = hitting_time_matrix(nx.cycle_graph(6))
        # Hitting time between antipodal nodes on C_6 is 9 (k(n-k) with k=3).
        assert hitting[0, 3] == pytest.approx(9.0)
        assert hitting[0, 1] == pytest.approx(1 * 5)

    def test_complete_graph(self):
        hitting, _ = hitting_time_matrix(nx.complete_graph(5))
        # Expected hitting time on K_n is n - 1.
        assert hitting[0, 1] == pytest.approx(4.0)

    def test_max_hitting_time_grows_with_size(self):
        assert max_hitting_time(grid_graph(5)) > max_hitting_time(grid_graph(3))

    def test_disconnected_raises(self):
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            hitting_time_matrix(graph)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            hitting_time_matrix(nx.Graph())


class TestMeetingTime:
    def test_positive_and_finite(self):
        value = expected_meeting_time(grid_graph(4), num_trials=50, rng=0)
        assert 0 < value < 10_000

    def test_complete_graph_meets_fast(self):
        value = expected_meeting_time(nx.complete_graph(10), num_trials=100, rng=1)
        assert value < 30

    def test_larger_grid_takes_longer(self):
        small = expected_meeting_time(grid_graph(3), num_trials=80, rng=2)
        large = expected_meeting_time(grid_graph(6), num_trials=80, rng=2)
        assert large > small

    def test_worst_case_starts_slower_or_equal(self):
        graph = grid_graph(4)
        random_starts = expected_meeting_time(graph, num_trials=150, rng=3)
        worst_starts = expected_meeting_time(
            graph, num_trials=150, rng=3, worst_case_starts=True
        )
        assert worst_starts >= 0.5 * random_starts  # worst-case should not be dramatically faster

    def test_augmented_grid_meeting_time_does_not_collapse(self):
        # The paper's point: augmenting the grid shrinks the mixing time much
        # more than the meeting time.  Check the meeting time stays within a
        # moderate factor while k goes from 1 to 3.
        base = expected_meeting_time(augmented_grid_graph(5, 1), num_trials=100, rng=4)
        augmented = expected_meeting_time(augmented_grid_graph(5, 3), num_trials=100, rng=4)
        assert augmented > base / 4

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            expected_meeting_time(grid_graph(3), num_trials=0)
        single = nx.Graph()
        single.add_node(0)
        with pytest.raises(ValueError):
            expected_meeting_time(single)
        disconnected = nx.Graph()
        disconnected.add_edges_from([(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            expected_meeting_time(disconnected)

    def test_meeting_time_bound_formula(self):
        assert meeting_time_bound(50.0, 256) == pytest.approx(50.0 * 8.0)
        with pytest.raises(ValueError):
            meeting_time_bound(-1.0, 10)
        with pytest.raises(ValueError):
            meeting_time_bound(1.0, 0)
