"""Tests for the fleet job spool: leases, contention, expiry, retry budget.

The spool's contract (alongside ``tests/test_store_concurrency.py`` for the
result store): a job is claimable by exactly one worker at a time, a dead
worker's lease is reclaimed after ``lease_ttl`` seconds of heartbeat
silence, and the retry budget bounds how often a job can fail before it is
parked in ``failed/``.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time

import pytest

from repro.fleet import DEFAULT_LEASE_TTL, DEFAULT_MAX_ATTEMPTS, JobSpool


def _payload(job_id: str) -> dict:
    return {"id": job_id, "kind": "sweep", "store": f"stores/{job_id}"}


def _backdate(spool: JobSpool, job_id: str, seconds: float) -> None:
    """Age an active lease as if its heartbeat stopped ``seconds`` ago."""
    lease = os.path.join(spool.root, "active", f"{job_id}.json")
    stale = time.time() - seconds
    os.utime(lease, (stale, stale))


class TestStateInspection:
    def test_state_of_tracks_the_lifecycle(self, tmp_path):
        spool = JobSpool(tmp_path / "spool", max_attempts=1)
        assert spool.state_of("job-a") is None
        spool.enqueue(_payload("job-a"))
        assert spool.state_of("job-a") == "jobs"
        spool.claim("w")
        assert spool.state_of("job-a") == "active"
        spool.mark_done("job-a")
        assert spool.state_of("job-a") == "done"

        spool.enqueue(_payload("job-b"))
        spool.claim("w")
        spool.mark_failed("job-b", "boom")
        assert spool.state_of("job-b") == "failed"

    def test_resurrect_failed_job_resets_the_budget(self, tmp_path):
        spool = JobSpool(tmp_path / "spool", max_attempts=1)
        spool.enqueue(_payload("job-a"))
        spool.claim("w")
        spool.mark_failed("job-a", "boom")

        spool.resurrect("job-a", "failed")
        assert spool.state_of("job-a") == "jobs"
        descriptor = spool.read_job("jobs", "job-a")
        assert descriptor["attempts"] == 0
        # Stale outcome fields are gone: indistinguishable from fresh.
        assert "last_error" not in descriptor
        assert "failed_at" not in descriptor
        job = spool.claim("w2")
        assert job.id == "job-a" and job.attempts == 0

    def test_resurrect_done_job(self, tmp_path):
        spool = JobSpool(tmp_path / "spool")
        spool.enqueue(_payload("job-a"))
        spool.claim("w")
        spool.mark_done("job-a", {"trials": 5})

        spool.resurrect("job-a", "done")
        assert spool.done_ids() == []
        descriptor = spool.read_job("jobs", "job-a")
        assert "outcome" not in descriptor
        assert "completed_at" not in descriptor

    def test_resurrect_validates_state_and_existence(self, tmp_path):
        spool = JobSpool(tmp_path / "spool")
        with pytest.raises(ValueError, match="only resurrect from"):
            spool.resurrect("job-a", "active")
        with pytest.raises(ValueError, match="no failed job"):
            spool.resurrect("job-a", "failed")


class TestLifecycle:
    def test_enqueue_claim_done(self, tmp_path):
        spool = JobSpool(tmp_path / "spool")
        spool.enqueue(_payload("job-a"))
        assert spool.pending_ids() == ["job-a"]
        assert not spool.is_drained()

        job = spool.claim("worker-1")
        assert job.id == "job-a"
        assert job.attempts == 0
        assert spool.pending_ids() == []
        assert spool.active_ids() == ["job-a"]
        meta = spool.read_meta("job-a")
        assert meta["worker"] == "worker-1"

        spool.mark_done("job-a", {"trials": 5})
        assert spool.active_ids() == []
        assert spool.done_ids() == ["job-a"]
        assert spool.is_drained()
        descriptor = spool.read_job("done", "job-a")
        assert descriptor["outcome"]["trials"] == 5

    def test_claim_order_is_sorted_and_empty_returns_none(self, tmp_path):
        spool = JobSpool(tmp_path / "spool")
        assert spool.claim("w") is None
        for job_id in ("job-b", "job-a"):
            spool.enqueue(_payload(job_id))
        assert spool.claim("w").id == "job-a"
        assert spool.claim("w").id == "job-b"
        assert spool.claim("w") is None

    def test_duplicate_enqueue_rejected_in_every_state(self, tmp_path):
        spool = JobSpool(tmp_path / "spool")
        spool.enqueue(_payload("job-a"))
        with pytest.raises(ValueError, match="already exists in jobs/"):
            spool.enqueue(_payload("job-a"))
        spool.claim("w")
        with pytest.raises(ValueError, match="already exists in active/"):
            spool.enqueue(_payload("job-a"))
        spool.mark_done("job-a")
        with pytest.raises(ValueError, match="already exists in done/"):
            spool.enqueue(_payload("job-a"))

    def test_bad_ids_rejected(self, tmp_path):
        spool = JobSpool(tmp_path / "spool")
        for bad in ("", "a/b", ".hidden"):
            with pytest.raises(ValueError, match="filesystem-safe"):
                spool.enqueue({"id": bad})

    def test_config_persists_for_later_joiners(self, tmp_path):
        first = JobSpool(tmp_path / "spool", lease_ttl=5.0, max_attempts=7)
        first.write_config()
        second = JobSpool(tmp_path / "spool")  # no explicit settings
        assert second.lease_ttl == 5.0
        assert second.max_attempts == 7
        # Explicit settings still override the persisted configuration.
        third = JobSpool(tmp_path / "spool", lease_ttl=2.0)
        assert third.lease_ttl == 2.0
        assert third.max_attempts == 7

    def test_defaults_without_config(self, tmp_path):
        spool = JobSpool(tmp_path / "spool")
        assert spool.lease_ttl == DEFAULT_LEASE_TTL
        assert spool.max_attempts == DEFAULT_MAX_ATTEMPTS

    def test_invalid_settings_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="lease_ttl"):
            JobSpool(tmp_path / "a", lease_ttl=0)
        with pytest.raises(ValueError, match="max_attempts"):
            JobSpool(tmp_path / "b", max_attempts=0)

    def test_counts(self, tmp_path):
        spool = JobSpool(tmp_path / "spool")
        for job_id in ("a", "b", "c"):
            spool.enqueue(_payload(job_id))
        spool.claim("w")
        assert spool.counts() == {"jobs": 2, "active": 1, "done": 0, "failed": 0}


class TestFailureAndRetry:
    def test_failed_job_requeues_with_bumped_attempts(self, tmp_path):
        spool = JobSpool(tmp_path / "spool", max_attempts=3)
        spool.enqueue(_payload("job-a"))
        job = spool.claim("w")
        assert spool.mark_failed(job.id, "boom") is True
        assert spool.pending_ids() == ["job-a"]
        requeued = spool.read_job("jobs", "job-a")
        assert requeued["attempts"] == 1
        assert requeued["last_error"] == "boom"

    def test_retry_budget_exhausts_to_failed(self, tmp_path):
        spool = JobSpool(tmp_path / "spool", max_attempts=2)
        spool.enqueue(_payload("job-a"))
        spool.claim("w")
        assert spool.mark_failed("job-a", "first") is True
        spool.claim("w")
        assert spool.mark_failed("job-a", "second") is False
        assert spool.pending_ids() == []
        assert spool.failed_ids() == ["job-a"]
        descriptor = spool.read_job("failed", "job-a")
        assert descriptor["attempts"] == 2
        assert descriptor["last_error"] == "second"
        assert spool.is_drained()


class TestLeaseExpiry:
    def test_fresh_lease_is_not_requeued(self, tmp_path):
        spool = JobSpool(tmp_path / "spool", lease_ttl=30.0)
        spool.enqueue(_payload("job-a"))
        spool.claim("dead-worker")
        assert spool.requeue_expired() == []
        assert spool.active_ids() == ["job-a"]

    def test_expired_lease_requeues_with_bumped_attempts(self, tmp_path):
        spool = JobSpool(tmp_path / "spool", lease_ttl=10.0)
        spool.enqueue(_payload("job-a"))
        spool.claim("dead-worker")
        _backdate(spool, "job-a", seconds=60.0)
        assert spool.requeue_expired() == ["job-a"]
        assert spool.active_ids() == []
        requeued = spool.read_job("jobs", "job-a")
        assert requeued["attempts"] == 1
        assert "lease expired" in requeued["last_error"]

    def test_heartbeat_keeps_lease_alive(self, tmp_path):
        spool = JobSpool(tmp_path / "spool", lease_ttl=10.0)
        spool.enqueue(_payload("job-a"))
        spool.claim("w")
        _backdate(spool, "job-a", seconds=60.0)
        spool.heartbeat("job-a")  # the worker is alive after all
        assert spool.requeue_expired() == []
        assert spool.read_meta("job-a")["heartbeat_at"] == pytest.approx(
            time.time(), abs=5.0
        )

    def test_expiry_exhausts_retry_budget_to_failed(self, tmp_path):
        spool = JobSpool(tmp_path / "spool", lease_ttl=10.0, max_attempts=1)
        spool.enqueue(_payload("job-a"))
        spool.claim("dead-worker")
        _backdate(spool, "job-a", seconds=60.0)
        assert spool.requeue_expired() == []
        assert spool.failed_ids() == ["job-a"]

    def test_mark_done_after_requeue_discards_the_late_result(self, tmp_path):
        """A stalled worker finishing after its lease was reclaimed must not

        crash, and must not overwrite the requeued job's lifecycle.
        """
        spool = JobSpool(tmp_path / "spool", lease_ttl=10.0)
        spool.enqueue(_payload("job-a"))
        job = spool.claim("stalled-worker")
        _backdate(spool, job.id, seconds=60.0)
        assert spool.requeue_expired() == ["job-a"]
        # The stalled worker comes back to life and reports completion.
        assert spool.mark_done(job.id, {"trials": 5}) is False
        assert spool.done_ids() == []
        assert spool.pending_ids() == ["job-a"]  # the requeue stands

    def test_long_pending_job_is_not_expired_at_claim_time(self, tmp_path):
        """The lease clock starts at claim, not at enqueue: a job that sat

        pending longer than lease_ttl must not be requeued from under the
        worker that just claimed it.
        """
        spool = JobSpool(tmp_path / "spool", lease_ttl=5.0)
        spool.enqueue(_payload("job-a"))
        # Age the *pending* descriptor far beyond the TTL (a deep queue).
        pending = os.path.join(spool.root, "jobs", "job-a.json")
        stale = time.time() - 120.0
        os.utime(pending, (stale, stale))
        job = spool.claim("w")
        assert job is not None
        assert spool.requeue_expired() == []
        assert spool.active_ids() == ["job-a"]
        assert spool.read_job("active", "job-a")["attempts"] == 0

    def test_future_heartbeat_is_never_expired(self, tmp_path):
        """Clock-skew regression: a lease mtime in the *future* (NTP step,

        VM resume, cross-machine skew over NFS) yields a negative age.  The
        old arithmetic compared that age against the TTL and could requeue a
        perfectly alive worker's job; now a negative age is never an expiry.
        """
        spool = JobSpool(tmp_path / "spool", lease_ttl=10.0)
        spool.enqueue(_payload("job-a"))
        spool.claim("alive-worker")
        _backdate(spool, "job-a", seconds=-3600.0)  # one hour in the future
        assert spool.requeue_expired() == []
        assert spool.active_ids() == ["job-a"]
        assert spool.read_job("active", "job-a")["attempts"] == 0

    def test_future_heartbeat_is_reanchored_to_now(self, tmp_path):
        """The skew guard re-anchors a future stamp to the present, so a

        far-future mtime cannot mask a genuine death for the skew's
        duration: one TTL after the re-anchor the silent lease expires.
        """
        spool = JobSpool(tmp_path / "spool", lease_ttl=10.0)
        spool.enqueue(_payload("job-a"))
        spool.claim("w")
        _backdate(spool, "job-a", seconds=-3600.0)
        assert spool.requeue_expired() == []
        lease = os.path.join(spool.root, "active", "job-a.json")
        assert os.path.getmtime(lease) == pytest.approx(time.time(), abs=5.0)
        # After the re-anchor the ordinary expiry clock applies again.
        _backdate(spool, "job-a", seconds=60.0)
        assert spool.requeue_expired() == ["job-a"]

    def test_caller_supplied_past_now_never_expires(self, tmp_path):
        """An explicit ``now`` older than every heartbeat (one host's clock

        lagging the fleet's) must requeue nothing rather than judging every
        lease by a stale clock.
        """
        spool = JobSpool(tmp_path / "spool", lease_ttl=10.0)
        spool.enqueue(_payload("job-a"))
        spool.claim("w")
        assert spool.requeue_expired(now=time.time() - 7200.0) == []
        assert spool.active_ids() == ["job-a"]

    def test_stale_lease_next_to_done_record_is_discarded(self, tmp_path):
        # A crash between mark_done's write and its lease removal leaves
        # both files; the reclaim pass must clean up, not re-run.
        spool = JobSpool(tmp_path / "spool", lease_ttl=10.0)
        spool.enqueue(_payload("job-a"))
        spool.claim("w")
        done_path = os.path.join(spool.root, "done", "job-a.json")
        with open(done_path, "w", encoding="utf-8") as handle:
            json.dump({"id": "job-a", "outcome": {}}, handle)
        _backdate(spool, "job-a", seconds=60.0)
        assert spool.requeue_expired() == []
        assert spool.active_ids() == []
        assert spool.pending_ids() == []
        assert spool.done_ids() == ["job-a"]


def _claim_all(root: str, worker: str, out_path: str) -> None:
    """Claim-loop used by the contention test: record every claimed id."""
    spool = JobSpool(root)
    claimed = []
    while True:
        job = spool.claim(worker)
        if job is None:
            if spool.is_drained():
                break
            time.sleep(0.01)
            continue
        claimed.append(job.id)
        spool.mark_done(job.id, {"worker": worker})
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(claimed, handle)


class TestClaimContention:
    def test_concurrent_claimers_never_share_a_job(self, tmp_path):
        """N processes hammering one spool partition the jobs exactly."""
        spool = JobSpool(tmp_path / "spool")
        job_ids = [f"job-{i:03d}" for i in range(40)]
        for job_id in job_ids:
            spool.enqueue(_payload(job_id))

        method = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        context = multiprocessing.get_context(method)
        outputs = [str(tmp_path / f"claims-{w}.json") for w in range(4)]
        processes = [
            context.Process(
                target=_claim_all, args=(str(spool.root), f"worker-{w}", out)
            )
            for w, out in enumerate(outputs)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join()
            assert process.exitcode == 0

        claims = [json.loads(open(out, encoding="utf-8").read()) for out in outputs]
        flat = [job_id for claimed in claims for job_id in claimed]
        # Exactly once each: no job lost, no job double-executed.
        assert sorted(flat) == job_ids
        assert len(set(flat)) == len(flat)
        assert spool.done_ids() == job_ids
        # And the recorded executor of each done job matches who claimed it.
        for worker_index, claimed in enumerate(claims):
            for job_id in claimed:
                outcome = spool.read_job("done", job_id)["outcome"]
                assert outcome["worker"] == f"worker-{worker_index}"
