"""Tests for repro.util.stats."""

from __future__ import annotations

import numpy as np
import pytest

from repro.util.stats import (
    empirical_ccdf,
    mean_confidence_interval,
    summarize,
    whp_quantile,
)


class TestSummarize:
    def test_basic_statistics(self):
        summary = summarize([1, 2, 3, 4, 5])
        assert summary.count == 5
        assert summary.mean == pytest.approx(3.0)
        assert summary.minimum == 1
        assert summary.maximum == 5
        assert summary.median == 3

    def test_single_sample_has_zero_std(self):
        summary = summarize([7.0])
        assert summary.std == 0.0
        assert summary.mean == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_quantiles_ordering(self):
        summary = summarize(range(101))
        assert summary.median <= summary.q90 <= summary.q99 <= summary.maximum

    def test_as_dict_round_trip(self):
        summary = summarize([1, 2, 3])
        d = summary.as_dict()
        assert d["count"] == 3
        assert d["mean"] == pytest.approx(2.0)
        assert set(d) == {"count", "mean", "std", "min", "max", "median", "q90", "q99"}

    def test_is_frozen(self):
        summary = summarize([1, 2])
        with pytest.raises(AttributeError):
            summary.mean = 10.0  # type: ignore[misc]


class TestWhpQuantile:
    def test_small_n_returns_max(self):
        assert whp_quantile([1, 2, 3], n=1) == 3

    def test_large_n_approaches_max(self):
        samples = list(range(100))
        assert whp_quantile(samples, n=10_000) >= 98

    def test_monotone_in_n(self):
        samples = list(range(100))
        assert whp_quantile(samples, 10) <= whp_quantile(samples, 1000)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            whp_quantile([], 10)


class TestMeanConfidenceInterval:
    def test_contains_mean(self):
        mean, low, high = mean_confidence_interval([1, 2, 3, 4, 5])
        assert low <= mean <= high

    def test_single_sample_degenerate(self):
        mean, low, high = mean_confidence_interval([3.0])
        assert mean == low == high == 3.0

    def test_width_shrinks_with_samples(self):
        rng = np.random.default_rng(0)
        small = rng.normal(size=20)
        large = rng.normal(size=2000)
        _, lo_s, hi_s = mean_confidence_interval(small)
        _, lo_l, hi_l = mean_confidence_interval(large)
        assert (hi_l - lo_l) < (hi_s - lo_s)

    def test_invalid_confidence(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([1, 2], confidence=1.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([])


class TestEmpiricalCcdf:
    def test_values_sorted_unique(self):
        values, _ = empirical_ccdf([3, 1, 2, 2])
        assert list(values) == [1, 2, 3]

    def test_survival_starts_at_one(self):
        _, ccdf = empirical_ccdf([5, 6, 7])
        assert ccdf[0] == 1.0

    def test_survival_decreasing(self):
        _, ccdf = empirical_ccdf(list(range(50)))
        assert all(a >= b for a, b in zip(ccdf, ccdf[1:]))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            empirical_ccdf([])
