"""Tests for repro.core.epochs (expansion quantities of Lemmas 9-11)."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.core.epochs import (
    degree_into_set,
    doubling_window_estimate,
    sample_degree_into_set,
    sample_set_expansion,
    sample_spread,
    set_expansion,
    spread_over_window,
)
from repro.meg.base import StaticGraphProcess
from repro.meg.edge_meg import EdgeMEG
from repro.meg.erdos_renyi import ErdosRenyiSequence


@pytest.fixture
def static_path():
    process = StaticGraphProcess(nx.path_graph(6))
    process.reset()
    return process


class TestDegreeIntoSet:
    def test_static_graph(self, static_path):
        assert degree_into_set(static_path, 2, {1, 3}) == 2
        assert degree_into_set(static_path, 0, {1, 2}) == 1
        assert degree_into_set(static_path, 0, {3, 4}) == 0

    def test_node_in_set_rejected(self, static_path):
        with pytest.raises(ValueError):
            degree_into_set(static_path, 1, {1, 2})

    def test_complete_graph_counts_whole_set(self):
        process = StaticGraphProcess(nx.complete_graph(7))
        process.reset()
        assert degree_into_set(process, 0, {1, 2, 3}) == 3


class TestSetExpansion:
    def test_static_graph(self, static_path):
        assert set_expansion(static_path, {0, 1}, {2, 3}) == 1
        assert set_expansion(static_path, {2}, {0, 1, 3}) == 2

    def test_disjointness_enforced(self, static_path):
        with pytest.raises(ValueError):
            set_expansion(static_path, {0, 1}, {1, 2})

    def test_no_expansion(self, static_path):
        assert set_expansion(static_path, {0}, {3, 4, 5}) == 0


class TestSpreadOverWindow:
    def test_static_path_spread_grows_with_window(self):
        process = StaticGraphProcess(nx.path_graph(8))
        process.reset()
        small = spread_over_window(process, {0}, window=1)
        process.reset()
        large = spread_over_window(process, {0}, window=5)
        # For a static graph the spread does not grow with the window (the
        # same neighbour is re-counted), so both equal 1.
        assert small == large == 1

    def test_dynamic_graph_accumulates(self):
        model = ErdosRenyiSequence(30, p=0.1)
        model.reset(0)
        one = spread_over_window(model, {0}, window=1)
        model.reset(0)
        many = spread_over_window(model, {0}, window=15)
        assert many >= one

    def test_invalid_window(self, static_path):
        with pytest.raises(ValueError):
            spread_over_window(static_path, {0}, window=0)
        with pytest.raises(ValueError):
            spread_over_window(static_path, {0}, window=1, epoch_length=0)


class TestSampling:
    def test_degree_samples_match_expectation(self):
        n = 80
        model = EdgeMEG(n, p=0.1, q=0.1)  # alpha = 0.5
        target_set = set(range(1, 21))
        samples = sample_degree_into_set(
            model, 0, target_set, num_samples=150, epoch_length=3, rng=0
        )
        assert np.mean(samples) == pytest.approx(len(target_set) * 0.5, rel=0.15)

    def test_expansion_samples_positive_for_dense_graph(self):
        model = EdgeMEG(30, p=0.3, q=0.3)
        samples = sample_set_expansion(
            model, set(range(10)), set(range(10, 30)), num_samples=40, epoch_length=2, rng=1
        )
        assert min(samples) > 0

    def test_spread_samples_monotone_in_window(self):
        model = EdgeMEG(40, p=0.02, q=0.5)
        short = sample_spread(model, {0, 1}, window=2, num_samples=30, rng=2)
        long = sample_spread(model, {0, 1}, window=10, num_samples=30, rng=2)
        assert np.mean(long) >= np.mean(short)

    def test_invalid_sample_counts(self):
        model = EdgeMEG(10, p=0.1, q=0.1)
        with pytest.raises(ValueError):
            sample_degree_into_set(model, 0, {1}, num_samples=0, epoch_length=1)
        with pytest.raises(ValueError):
            sample_set_expansion(model, {0}, {1}, num_samples=1, epoch_length=0)
        with pytest.raises(ValueError):
            sample_spread(model, {0}, window=1, num_samples=0)


class TestDoublingWindow:
    def test_dense_graph_doubles_immediately(self):
        model = ErdosRenyiSequence(40, p=0.5)
        assert doubling_window_estimate(model, set(range(5)), rng=0) == 1

    def test_sparse_graph_takes_longer(self):
        sparse = EdgeMEG(60, p=0.2 / 60, q=0.5)
        dense = EdgeMEG(60, p=10.0 / 60, q=0.5)
        slow = doubling_window_estimate(sparse, set(range(4)), rng=1)
        fast = doubling_window_estimate(dense, set(range(4)), rng=1)
        assert slow >= fast

    def test_empty_set_rejected(self):
        model = ErdosRenyiSequence(10, p=0.5)
        with pytest.raises(ValueError):
            doubling_window_estimate(model, set(), rng=0)

    def test_unreachable_raises(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(4))
        graph.add_edge(2, 3)
        process = StaticGraphProcess(graph)
        with pytest.raises(RuntimeError):
            doubling_window_estimate(process, {0, 1}, max_window=10)
