"""Tests for repro.meg.edge_meg (classic and generalised edge-MEGs)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.markov.builders import birth_death_chain, two_state_chain, uniform_chain
from repro.meg.edge_meg import EdgeMEG, GeneralEdgeMEG


class TestEdgeMEGConstruction:
    def test_valid(self):
        model = EdgeMEG(10, p=0.1, q=0.2)
        assert model.num_nodes == 10
        assert model.p == 0.1
        assert model.q == 0.2

    def test_stationary_edge_probability(self):
        assert EdgeMEG(5, p=0.1, q=0.3).stationary_edge_probability() == pytest.approx(0.25)

    def test_rejects_frozen_chain(self):
        with pytest.raises(ValueError):
            EdgeMEG(5, p=0.0, q=0.0)

    def test_rejects_invalid_probability(self):
        with pytest.raises(ValueError):
            EdgeMEG(5, p=1.5, q=0.1)

    def test_rejects_invalid_initial_probability(self):
        with pytest.raises(ValueError):
            EdgeMEG(5, p=0.1, q=0.1, initial_edge_probability=2.0)

    def test_edge_chain_matches_parameters(self):
        chain = EdgeMEG(5, p=0.1, q=0.3).edge_chain()
        assert chain.transition_probability("off", "on") == pytest.approx(0.1)
        assert chain.transition_probability("on", "off") == pytest.approx(0.3)

    def test_step_before_reset_raises(self):
        model = EdgeMEG(5, p=0.1, q=0.1)
        with pytest.raises(RuntimeError):
            model.step()
        with pytest.raises(RuntimeError):
            list(model.current_edges())


class TestEdgeMEGDynamics:
    def test_reset_is_reproducible(self):
        model = EdgeMEG(20, p=0.2, q=0.2)
        model.reset(5)
        first = set(model.current_edges())
        model.reset(5)
        assert set(model.current_edges()) == first

    def test_different_seeds_differ(self):
        model = EdgeMEG(20, p=0.5, q=0.5)
        model.reset(1)
        a = set(model.current_edges())
        model.reset(2)
        b = set(model.current_edges())
        assert a != b

    def test_empty_start(self):
        model = EdgeMEG(10, p=0.1, q=0.1, initial_edge_probability=0.0)
        model.reset(0)
        assert model.edge_count() == 0

    def test_full_start(self):
        model = EdgeMEG(10, p=0.1, q=0.1, initial_edge_probability=1.0)
        model.reset(0)
        assert model.edge_count() == 45

    def test_p_one_fills_graph(self):
        model = EdgeMEG(8, p=1.0, q=0.0, initial_edge_probability=0.0)
        model.reset(0)
        model.step()
        assert model.edge_count() == 28

    def test_q_one_empties_graph(self):
        model = EdgeMEG(8, p=0.0, q=1.0, initial_edge_probability=1.0)
        model.reset(0)
        model.step()
        assert model.edge_count() == 0

    def test_stationary_density_matches(self):
        model = EdgeMEG(30, p=0.2, q=0.2)
        model.reset(3)
        counts = []
        for _ in range(200):
            counts.append(model.edge_count())
            model.step()
        total_pairs = 30 * 29 / 2
        assert np.mean(counts) / total_pairs == pytest.approx(0.5, abs=0.05)

    def test_time_counter(self):
        model = EdgeMEG(5, p=0.5, q=0.5)
        model.reset(0)
        model.run(7)
        assert model.time == 7

    def test_neighbors_of_set_matches_generic(self):
        model = EdgeMEG(15, p=0.3, q=0.3)
        model.reset(9)
        informed = {0, 3, 7}
        fast = model.neighbors_of_set(informed)
        slow = set()
        for i, j in model.current_edges():
            if i in informed:
                slow.add(j)
            if j in informed:
                slow.add(i)
        assert fast == slow

    def test_edges_are_canonical_pairs(self):
        model = EdgeMEG(10, p=0.5, q=0.1)
        model.reset(2)
        for i, j in model.current_edges():
            assert 0 <= i < j < 10


class TestGeneralEdgeMEG:
    def test_two_state_equivalence_of_alpha(self):
        chain = two_state_chain(0.1, 0.3)
        model = GeneralEdgeMEG(10, chain, chi=lambda s: s == "on")
        assert model.stationary_edge_probability() == pytest.approx(0.25)

    def test_chi_as_sequence(self):
        chain = uniform_chain(4)
        model = GeneralEdgeMEG(6, chain, chi=[0, 1, 1, 0])
        assert model.stationary_edge_probability() == pytest.approx(0.5)

    def test_chi_all_zero_rejected(self):
        chain = uniform_chain(3)
        with pytest.raises(ValueError, match="every state to 0"):
            GeneralEdgeMEG(5, chain, chi=[0, 0, 0])

    def test_chi_wrong_length_rejected(self):
        chain = uniform_chain(3)
        with pytest.raises(ValueError):
            GeneralEdgeMEG(5, chain, chi=[1, 0])

    def test_invalid_initial_distribution(self):
        chain = uniform_chain(3)
        with pytest.raises(ValueError):
            GeneralEdgeMEG(5, chain, chi=[1, 0, 0], initial_distribution=[0.5, 0.5, 0.5])

    def test_step_before_reset_raises(self):
        model = GeneralEdgeMEG(5, uniform_chain(2), chi=[0, 1])
        with pytest.raises(RuntimeError):
            model.step()

    def test_reproducible(self):
        chain = birth_death_chain([0.4, 0.4, 0.0], [0.0, 0.4, 0.4])
        model = GeneralEdgeMEG(12, chain, chi=[0, 0, 1])
        model.reset(11)
        first = set(model.current_edges())
        model.reset(11)
        assert set(model.current_edges()) == first

    def test_empirical_density_matches_alpha(self):
        chain = birth_death_chain([0.5, 0.5, 0.0], [0.0, 0.5, 0.5])
        model = GeneralEdgeMEG(20, chain, chi=[0, 0, 1])
        alpha = model.stationary_edge_probability()
        model.reset(7)
        counts = []
        for _ in range(300):
            counts.append(model.edge_count())
            model.step()
        total_pairs = 20 * 19 / 2
        assert np.mean(counts) / total_pairs == pytest.approx(alpha, abs=0.05)

    def test_deterministic_on_chain_keeps_all_edges(self):
        # A chain frozen in the 'on' state keeps every edge forever.
        from repro.markov.chain import MarkovChain

        frozen = MarkovChain([[1.0, 0.0], [0.0, 1.0]], states=("on", "off"))
        model = GeneralEdgeMEG(
            6, frozen, chi=lambda s: s == "on", initial_distribution=[1.0, 0.0]
        )
        model.reset(0)
        model.run(5)
        assert model.edge_count() == 15

    def test_neighbors_of_set(self):
        chain = two_state_chain(0.5, 0.5)
        model = GeneralEdgeMEG(10, chain, chi=lambda s: s == "on")
        model.reset(4)
        informed = {0, 1}
        fast = model.neighbors_of_set(informed)
        slow = set()
        for i, j in model.current_edges():
            if i in informed:
                slow.add(j)
            if j in informed:
                slow.add(i)
        assert fast == slow

    def test_chi_flags_copy(self):
        model = GeneralEdgeMEG(5, uniform_chain(2), chi=[0, 1])
        flags = model.chi_flags()
        flags[0] = True
        assert not model.chi_flags()[0]
