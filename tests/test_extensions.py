"""Tests for the extension features: multi-source flooding, push-pull gossip,
random direction mobility, the four-state edge-MEG of [5], and the
T-interval-connectivity checker."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.core.flooding import flood, multi_source_flood
from repro.core.spreading import push_pull_spread
from repro.markov.builders import four_state_edge_chain
from repro.markov.mixing import mixing_time
from repro.meg.base import StaticGraphProcess
from repro.meg.edge_meg import EdgeMEG, four_state_edge_meg
from repro.meg.erdos_renyi import ErdosRenyiSequence
from repro.meg.snapshots import is_t_interval_connected, largest_stable_interval
from repro.mobility.geometry import SquareRegion
from repro.mobility.random_direction import RandomDirection, RandomDirectionSampler, _reflect


class TestMultiSourceFlood:
    def test_all_sources_trivially_complete(self):
        model = ErdosRenyiSequence(10, p=0.3)
        result = multi_source_flood(model, sources=range(10), rng=0)
        assert result.flooding_time == 0
        assert result.informed_history[0] == 10

    def test_faster_than_single_source(self):
        model = EdgeMEG(80, p=0.02, q=0.5)
        single = [flood(model, rng=s).flooding_time for s in range(6)]
        multi = [
            multi_source_flood(model, sources=[0, 20, 40, 60], rng=s).flooding_time
            for s in range(6)
        ]
        assert np.mean(multi) <= np.mean(single)

    def test_duplicate_sources_collapsed(self):
        model = ErdosRenyiSequence(12, p=0.4)
        result = multi_source_flood(model, sources=[3, 3, 3], rng=1)
        assert result.informed_history[0] == 1

    def test_history_monotone(self):
        model = EdgeMEG(30, p=0.1, q=0.3)
        result = multi_source_flood(model, sources=[0, 15], rng=2)
        history = result.informed_history
        assert all(a <= b for a, b in zip(history, history[1:]))

    def test_invalid_sources(self):
        model = ErdosRenyiSequence(10, p=0.4)
        with pytest.raises(ValueError):
            multi_source_flood(model, sources=[])
        with pytest.raises(ValueError):
            multi_source_flood(model, sources=[99])

    def test_static_path_from_both_ends(self):
        process = StaticGraphProcess(nx.path_graph(9))
        single = flood(process, source=0).flooding_time
        both_ends = multi_source_flood(process, sources=[0, 8]).flooding_time
        assert single == 8
        assert both_ends == 4


class TestPushPull:
    def test_completes_on_dynamic_graph(self, small_edge_meg):
        result = push_pull_spread(small_edge_meg, rng=0)
        assert result.completed

    def test_matches_flooding_on_complete_graph_eventually(self):
        process = StaticGraphProcess(nx.complete_graph(16))
        result = push_pull_spread(process, rng=1)
        assert result.completed
        # Push-pull on the complete graph needs ~log n rounds, more than
        # flooding's single round but far fewer than n.
        assert 2 <= result.completion_time <= 16

    def test_slower_than_flooding(self):
        model = EdgeMEG(60, p=0.08, q=0.5)
        flood_times = [flood(model, rng=s).flooding_time for s in range(6)]
        push_pull_times = [push_pull_spread(model, rng=s).completion_time for s in range(6)]
        assert np.mean(push_pull_times) >= np.mean(flood_times)

    def test_history_monotone(self, small_edge_meg):
        result = push_pull_spread(small_edge_meg, rng=3)
        history = result.informed_history
        assert all(a <= b for a, b in zip(history, history[1:]))

    def test_invalid_source(self, small_edge_meg):
        with pytest.raises(ValueError):
            push_pull_spread(small_edge_meg, source=999)

    def test_single_node(self):
        graph = nx.Graph()
        graph.add_node(0)
        result = push_pull_spread(StaticGraphProcess(graph))
        assert result.completion_time == 0


class TestRandomDirection:
    def test_reflect_helper(self):
        assert _reflect(0.5, 4.0) == pytest.approx(0.5)
        assert _reflect(4.5, 4.0) == pytest.approx(3.5)
        assert _reflect(-0.5, 4.0) == pytest.approx(0.5)
        assert _reflect(8.5, 4.0) == pytest.approx(0.5)

    def test_positions_stay_inside(self):
        model = RandomDirection(15, side=5.0, radius=1.0, speed=1.0)
        model.reset(0)
        for _ in range(25):
            positions = model.positions()
            assert positions.min() >= -1e-9
            assert positions.max() <= 5.0 + 1e-9
            model.step()

    def test_step_displacement_bounded_by_speed(self):
        model = RandomDirection(10, side=8.0, radius=1.0, speed=0.7, warmup_steps=0)
        model.reset(1)
        before = model.positions()
        model.step()
        after = model.positions()
        # Reflection can only shorten the apparent displacement.
        assert np.linalg.norm(after - before, axis=1).max() <= 0.7 + 1e-9

    def test_flooding_completes(self):
        from repro.core.flooding import flooding_time

        model = RandomDirection(40, side=6.0, radius=1.0, speed=1.0)
        assert flooding_time(model, rng=2) >= 1

    def test_positional_distribution_roughly_uniform(self):
        from repro.mobility.positional import empirical_positional_distribution

        side = 6.0
        model = RandomDirection(60, side=side, radius=1.0, speed=1.0)
        region = SquareRegion(side)
        density = empirical_positional_distribution(
            model, region, resolution=3, num_snapshots=150, spacing=2, rng=3
        )
        # Unlike the waypoint, no strong centre bias: max/min cell density stays moderate.
        assert density.max() / max(density.min(), 1e-12) < 4.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RandomDirectionSampler(speed=0.0)
        with pytest.raises(ValueError):
            RandomDirectionSampler(speed=1.0, mean_leg_steps=0.0)


class TestFourStateEdgeMeg:
    def test_chain_states_and_stationarity(self):
        chain = four_state_edge_chain(0.3, 0.3, 0.2, 0.1)
        assert chain.states == ("off-stable", "off-volatile", "on-volatile", "on-stable")
        pi = chain.stationary_distribution()
        assert pi.sum() == pytest.approx(1.0)
        assert chain.is_ergodic()

    def test_symmetric_parameters_balance_on_off(self):
        chain = four_state_edge_chain(0.3, 0.3, 0.2, 0.2)
        pi = chain.stationary_distribution()
        on_mass = pi[2] + pi[3]
        assert on_mass == pytest.approx(0.5, abs=1e-8)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            four_state_edge_chain(0.0, 0.3, 0.2, 0.1)
        with pytest.raises(ValueError):
            four_state_edge_chain(0.9, 0.3, 0.2, 0.1)
        with pytest.raises(ValueError):
            four_state_edge_chain(0.3, 0.3, 0.2, 0.0)

    def test_model_floods(self):
        from repro.core.flooding import flooding_time

        model = four_state_edge_meg(60, p_up=0.1, p_down=0.4, p_stabilize=0.2, p_destabilize=0.1)
        assert model.stationary_edge_probability() > 0
        assert flooding_time(model, rng=0) >= 1

    def test_sticky_links_mix_slower_than_classic(self):
        # Stable states lengthen the link memory, so the four-state chain
        # mixes slower than a two-state chain with the same up/down rates.
        from repro.markov.builders import two_state_chain

        classic = two_state_chain(0.3, 0.3)
        refined = four_state_edge_chain(0.3, 0.3, 0.3, 0.05)
        assert mixing_time(refined) > mixing_time(classic)


class TestTIntervalConnectivity:
    def _snapshots(self, edge_lists, n=4):
        graphs = []
        for edges in edge_lists:
            graph = nx.Graph()
            graph.add_nodes_from(range(n))
            graph.add_edges_from(edges)
            graphs.append(graph)
        return graphs

    def test_static_connected_sequence(self):
        snapshots = self._snapshots([[(0, 1), (1, 2), (2, 3)]] * 5)
        assert is_t_interval_connected(snapshots, 1)
        assert is_t_interval_connected(snapshots, 5)

    def test_disconnected_snapshot_fails_even_t1(self):
        snapshots = self._snapshots([[(0, 1)], [(0, 1), (1, 2), (2, 3)]])
        assert not is_t_interval_connected(snapshots, 1)

    def test_changing_spanning_trees_break_large_t(self):
        tree_a = [(0, 1), (1, 2), (2, 3)]
        tree_b = [(0, 2), (2, 1), (1, 3)]
        snapshots = self._snapshots([tree_a, tree_b, tree_a, tree_b])
        assert is_t_interval_connected(snapshots, 1)
        assert not is_t_interval_connected(snapshots, 2)

    def test_invalid_arguments(self):
        snapshots = self._snapshots([[(0, 1), (1, 2), (2, 3)]] * 3)
        with pytest.raises(ValueError):
            is_t_interval_connected(snapshots, 0)
        with pytest.raises(ValueError):
            is_t_interval_connected(snapshots, 10)
        mismatched = snapshots + [nx.path_graph(5)]
        with pytest.raises(ValueError):
            is_t_interval_connected(mismatched, 1)

    def test_sparse_meg_is_not_interval_connected(self):
        # The paper's sparse MEGs have disconnected snapshots, so the
        # worst-case T-interval-connectivity framework of [21] cannot
        # describe them: the largest stable interval is 0.
        model = EdgeMEG(40, p=1.0 / 40, q=0.5)
        assert largest_stable_interval(model, num_snapshots=10, rng=0) == 0

    def test_dense_iid_graphs_are_1_interval_connected(self):
        model = ErdosRenyiSequence(12, p=0.9)
        assert largest_stable_interval(model, num_snapshots=6, rng=1) >= 1
