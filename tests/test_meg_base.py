"""Tests for repro.meg.base (DynamicGraph interface and StaticGraphProcess)."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.meg.base import (
    StaticGraphProcess,
    all_pairs,
    edges_from_adjacency_matrix,
)


@pytest.fixture
def path_process():
    return StaticGraphProcess(nx.path_graph(5))


class TestStaticGraphProcess:
    def test_requires_contiguous_labels(self):
        graph = nx.Graph()
        graph.add_edge(3, 5)
        with pytest.raises(ValueError, match="0..n-1"):
            StaticGraphProcess(graph)

    def test_requires_nonempty(self):
        with pytest.raises(ValueError):
            StaticGraphProcess(nx.Graph())

    def test_edges_are_static(self, path_process):
        path_process.reset()
        before = set(path_process.current_edges())
        path_process.step()
        after = set(path_process.current_edges())
        assert before == after == {(0, 1), (1, 2), (2, 3), (3, 4)}

    def test_time_advances(self, path_process):
        path_process.reset()
        assert path_process.time == 0
        path_process.run(5)
        assert path_process.time == 5

    def test_run_negative_raises(self, path_process):
        path_process.reset()
        with pytest.raises(ValueError):
            path_process.run(-1)

    def test_neighbors_of_set(self, path_process):
        path_process.reset()
        assert path_process.neighbors_of_set({0}) == {1}
        assert path_process.neighbors_of_set({2}) == {1, 3}
        assert path_process.neighbors_of_set({0, 4}) == {1, 3}

    def test_neighbors_of_empty_set(self, path_process):
        path_process.reset()
        assert path_process.neighbors_of_set(set()) == set()

    def test_snapshot_roundtrip(self, path_process):
        path_process.reset()
        snapshot = path_process.snapshot()
        assert isinstance(snapshot, nx.Graph)
        assert snapshot.number_of_nodes() == 5
        assert snapshot.number_of_edges() == 4

    def test_has_edge(self, path_process):
        path_process.reset()
        assert path_process.has_edge(0, 1)
        assert path_process.has_edge(1, 0)
        assert not path_process.has_edge(0, 2)
        assert not path_process.has_edge(3, 3)

    def test_has_edge_out_of_range(self, path_process):
        path_process.reset()
        with pytest.raises(ValueError):
            path_process.has_edge(0, 99)

    def test_degree(self, path_process):
        path_process.reset()
        assert path_process.degree(0) == 1
        assert path_process.degree(2) == 2

    def test_edge_count(self, path_process):
        path_process.reset()
        assert path_process.edge_count() == 4


class TestHelpers:
    def test_all_pairs_count(self):
        assert len(all_pairs(5)) == 10

    def test_all_pairs_ordering(self):
        pairs = all_pairs(4)
        assert all(i < j for i, j in pairs)

    def test_all_pairs_zero_nodes(self):
        assert all_pairs(0) == []

    def test_all_pairs_negative_raises(self):
        with pytest.raises(ValueError):
            all_pairs(-1)

    def test_edges_from_adjacency_matrix(self):
        matrix = np.array([[0, 1, 0], [1, 0, 1], [0, 1, 0]])
        assert edges_from_adjacency_matrix(matrix) == [(0, 1), (1, 2)]

    def test_edges_from_adjacency_ignores_diagonal(self):
        matrix = np.eye(3)
        assert edges_from_adjacency_matrix(matrix) == []

    def test_edges_from_adjacency_rejects_non_square(self):
        with pytest.raises(ValueError):
            edges_from_adjacency_matrix(np.zeros((2, 3)))
