"""Tests for repro.graphs.grid and repro.graphs.generators."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.graphs.generators import (
    binary_tree_mobility_graph,
    complete_mobility_graph,
    cycle_mobility_graph,
    path_mobility_graph,
    star_mobility_graph,
    torus_graph,
)
from repro.graphs.grid import (
    augmented_grid_graph,
    grid_graph,
    grid_positions,
    grid_side_for_points,
    manhattan_distance,
    nodes_within_hops,
)


class TestGridGraph:
    def test_node_count(self):
        assert grid_graph(4).number_of_nodes() == 16

    def test_edge_count(self):
        # An m x m grid has 2 m (m - 1) edges.
        assert grid_graph(5).number_of_edges() == 2 * 5 * 4

    def test_single_point(self):
        graph = grid_graph(1)
        assert graph.number_of_nodes() == 1
        assert graph.number_of_edges() == 0

    def test_invalid_side(self):
        with pytest.raises(ValueError):
            grid_graph(0)

    def test_periodic_is_regular(self):
        graph = grid_graph(4, periodic=True)
        assert all(d == 4 for _, d in graph.degree())

    def test_connected(self):
        assert nx.is_connected(grid_graph(6))


class TestGridSideForPoints:
    def test_exact_square(self):
        assert grid_side_for_points(16) == 4

    def test_rounds_up(self):
        assert grid_side_for_points(17) == 5

    def test_one_point(self):
        assert grid_side_for_points(1) == 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            grid_side_for_points(0)


class TestAugmentedGrid:
    def test_k1_is_plain_grid(self):
        plain = grid_graph(4)
        augmented = augmented_grid_graph(4, 1)
        assert set(plain.edges()) == set(augmented.edges())

    def test_k2_adds_edges(self):
        plain = grid_graph(4)
        augmented = augmented_grid_graph(4, 2)
        assert augmented.number_of_edges() > plain.number_of_edges()
        # Every plain edge is still there.
        assert all(augmented.has_edge(*e) for e in plain.edges())

    def test_edges_respect_hop_distance(self):
        augmented = augmented_grid_graph(5, 2)
        for (a, b) in augmented.edges():
            assert manhattan_distance(a, b) <= 2

    def test_diameter_shrinks_with_k(self):
        d1 = nx.diameter(augmented_grid_graph(6, 1))
        d3 = nx.diameter(augmented_grid_graph(6, 3))
        assert d3 < d1

    def test_periodic_wraps(self):
        augmented = augmented_grid_graph(5, 2, periodic=True)
        assert augmented.has_edge((0, 0), (4, 0))  # wrap distance 1
        assert augmented.has_edge((0, 0), (3, 0))  # wrap distance 2

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            augmented_grid_graph(4, 0)


class TestGridPositions:
    def test_coordinates(self):
        positions = grid_positions(3, spacing=2.0)
        assert positions[(0, 0)] == (0.0, 0.0)
        assert positions[(1, 2)] == (4.0, 2.0)

    def test_count(self):
        assert len(grid_positions(4)) == 16

    def test_invalid_spacing(self):
        with pytest.raises(ValueError):
            grid_positions(3, spacing=0.0)


class TestManhattanDistance:
    def test_plain(self):
        assert manhattan_distance((0, 0), (2, 3)) == 5

    def test_wraparound(self):
        assert manhattan_distance((0, 0), (4, 0), side=5) == 1

    def test_zero(self):
        assert manhattan_distance((1, 1), (1, 1)) == 0

    def test_invalid_side(self):
        with pytest.raises(ValueError):
            manhattan_distance((0, 0), (1, 1), side=0)


class TestNodesWithinHops:
    def test_zero_hops_is_self(self):
        graph = grid_graph(3)
        assert nodes_within_hops(graph, (1, 1), 0) == {(1, 1)}

    def test_one_hop_centre(self):
        graph = grid_graph(3)
        ball = nodes_within_hops(graph, (1, 1), 1)
        assert ball == {(1, 1), (0, 1), (2, 1), (1, 0), (1, 2)}

    def test_large_radius_covers_graph(self):
        graph = grid_graph(3)
        assert nodes_within_hops(graph, (0, 0), 10) == set(graph.nodes())

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            nodes_within_hops(grid_graph(3), (0, 0), -1)


class TestGenerators:
    def test_torus_regular(self):
        graph = torus_graph(4)
        assert all(d == 4 for _, d in graph.degree())

    def test_torus_too_small(self):
        with pytest.raises(ValueError):
            torus_graph(2)

    def test_cycle(self):
        graph = cycle_mobility_graph(6)
        assert graph.number_of_edges() == 6

    def test_path(self):
        graph = path_mobility_graph(5)
        assert graph.number_of_edges() == 4

    def test_complete(self):
        graph = complete_mobility_graph(5)
        assert graph.number_of_edges() == 10

    def test_star_hub_degree(self):
        graph = star_mobility_graph(7)
        degrees = sorted(d for _, d in graph.degree())
        assert degrees[-1] == 7

    def test_binary_tree_size(self):
        graph = binary_tree_mobility_graph(3)
        assert graph.number_of_nodes() == 2**4 - 1

    @pytest.mark.parametrize(
        "factory,arg",
        [
            (cycle_mobility_graph, 2),
            (path_mobility_graph, 1),
            (complete_mobility_graph, 1),
            (star_mobility_graph, 0),
            (binary_tree_mobility_graph, 0),
        ],
    )
    def test_invalid_sizes(self, factory, arg):
        with pytest.raises(ValueError):
            factory(arg)
