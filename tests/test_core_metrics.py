"""Tests for repro.core.metrics."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core.metrics import (
    PhaseSplit,
    bound_ratio,
    flooding_time_statistics,
    phase_split,
    whp_flooding_time,
)
from repro.meg.base import StaticGraphProcess
from repro.meg.edge_meg import EdgeMEG


class TestFloodingTimeStatistics:
    def test_static_graph_degenerate_distribution(self):
        process = StaticGraphProcess(nx.path_graph(5))
        summary = flooding_time_statistics(process, num_trials=5)
        assert summary.mean == 4.0
        assert summary.std == 0.0

    def test_dynamic_graph_statistics(self, small_edge_meg):
        summary = flooding_time_statistics(small_edge_meg, num_trials=10, rng=0)
        assert summary.count == 10
        assert summary.minimum >= 1
        assert summary.maximum >= summary.median >= summary.minimum

    def test_reproducible(self, small_edge_meg):
        a = flooding_time_statistics(small_edge_meg, num_trials=5, rng=3)
        b = flooding_time_statistics(small_edge_meg, num_trials=5, rng=3)
        assert a == b


class TestWhpFloodingTime:
    def test_at_least_median(self, small_edge_meg):
        summary = flooding_time_statistics(small_edge_meg, num_trials=15, rng=1)
        whp = whp_flooding_time(small_edge_meg, num_trials=15, rng=1)
        assert whp >= summary.median


class TestPhaseSplit:
    def test_phases_sum_to_total(self, small_edge_meg):
        split = phase_split(small_edge_meg, num_trials=6, rng=2)
        summary = flooding_time_statistics(small_edge_meg, num_trials=6, rng=2)
        assert split.total == pytest.approx(summary.mean)

    def test_saturation_nonnegative(self, small_edge_meg):
        split = phase_split(small_edge_meg, num_trials=6, rng=4)
        assert split.spreading >= 0
        assert split.saturation >= 0

    def test_dataclass_total(self):
        assert PhaseSplit(spreading=3.0, saturation=2.0).total == 5.0

    def test_invalid_trials(self, small_edge_meg):
        with pytest.raises(ValueError):
            phase_split(small_edge_meg, num_trials=0)

    def test_incomplete_flooding_raises(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(4))
        graph.add_edge(0, 1)
        process = StaticGraphProcess(graph)
        with pytest.raises(RuntimeError):
            phase_split(process, num_trials=1, max_steps=10)


class TestBoundRatio:
    def test_simple_ratio(self):
        assert bound_ratio(5.0, 10.0) == 0.5

    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            bound_ratio(5.0, 0.0)

    def test_invalid_measurement(self):
        with pytest.raises(ValueError):
            bound_ratio(-1.0, 10.0)

    def test_measured_below_bound_for_edge_meg(self):
        # Sanity: the Theorem-1 bound (constant 1) should not be smaller than
        # the measured flooding time by construction of the experiment regime.
        from repro.core.bounds import classic_edge_meg_bound

        n, p, q = 60, 2.0 / 60, 0.5
        model = EdgeMEG(n, p=p, q=q)
        summary = flooding_time_statistics(model, num_trials=8, rng=5)
        assert bound_ratio(summary.mean, classic_edge_meg_bound(n, p, q)) < 5.0
