"""Tests for repro.markov.builders and repro.markov.sampling."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.markov.builders import (
    birth_death_chain,
    complete_graph_walk,
    cycle_walk,
    grid_walk,
    lazy_random_walk,
    random_walk_on_graph,
    two_state_chain,
    uniform_chain,
)
from repro.markov.sampling import (
    empirical_state_distribution,
    sample_path,
    sample_states,
    sample_stationary_state,
)


class TestTwoStateChain:
    def test_states(self):
        chain = two_state_chain(0.2, 0.3)
        assert chain.states == ("off", "on")

    def test_stationary_distribution(self):
        chain = two_state_chain(0.2, 0.3)
        pi = chain.stationary_distribution()
        assert pi == pytest.approx([0.6, 0.4])  # (q, p) / (p + q)

    def test_frozen_chain_rejected(self):
        with pytest.raises(ValueError):
            two_state_chain(0.0, 0.0)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            two_state_chain(1.2, 0.1)


class TestUniformChain:
    def test_mixing_in_one_step(self):
        chain = uniform_chain(5)
        assert np.allclose(chain.transition_matrix, 0.2)

    def test_custom_labels(self):
        chain = uniform_chain(2, states=("a", "b"))
        assert chain.states == ("a", "b")

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            uniform_chain(0)


class TestBirthDeathChain:
    def test_simple_symmetric(self):
        chain = birth_death_chain([0.5, 0.5, 0.0], [0.0, 0.5, 0.5])
        pi = chain.stationary_distribution()
        assert pi == pytest.approx([1 / 3] * 3)

    def test_holding_probability_computed(self):
        chain = birth_death_chain([0.3, 0.0], [0.0, 0.1])
        assert chain.transition_probability(0, 0) == pytest.approx(0.7)
        assert chain.transition_probability(1, 1) == pytest.approx(0.9)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            birth_death_chain([0.5, 0.0], [0.0])

    def test_last_state_cannot_move_up(self):
        with pytest.raises(ValueError):
            birth_death_chain([0.5, 0.5], [0.0, 0.5])

    def test_first_state_cannot_move_down(self):
        with pytest.raises(ValueError):
            birth_death_chain([0.5, 0.0], [0.1, 0.5])

    def test_probabilities_exceed_one(self):
        with pytest.raises(ValueError):
            birth_death_chain([0.8, 0.5, 0.0], [0.0, 0.6, 0.5])


class TestRandomWalkOnGraph:
    def test_states_are_node_labels(self):
        graph = nx.path_graph(4)
        walk = random_walk_on_graph(graph)
        assert walk.states == tuple(graph.nodes())

    def test_stationary_proportional_to_degree(self):
        graph = nx.path_graph(3)  # degrees 1, 2, 1
        pi = random_walk_on_graph(graph).stationary_distribution()
        assert pi == pytest.approx([0.25, 0.5, 0.25])

    def test_isolated_node_absorbing(self):
        graph = nx.Graph()
        graph.add_nodes_from([0, 1, 2])
        graph.add_edge(0, 1)
        walk = random_walk_on_graph(graph)
        assert walk.transition_probability(2, 2) == pytest.approx(1.0)

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            random_walk_on_graph(nx.Graph())

    def test_lazy_walk_aperiodic_on_bipartite(self):
        graph = nx.path_graph(4)
        assert not random_walk_on_graph(graph).is_aperiodic()
        assert lazy_random_walk(graph).is_aperiodic()


class TestTopologyWalks:
    def test_cycle_walk_states(self):
        assert cycle_walk(7).num_states == 7

    def test_cycle_walk_too_small(self):
        with pytest.raises(ValueError):
            cycle_walk(2)

    def test_complete_graph_walk_uniform_stationary(self):
        pi = complete_graph_walk(6).stationary_distribution()
        assert pi == pytest.approx([1 / 6] * 6)

    def test_grid_walk_size(self):
        assert grid_walk(3).num_states == 9

    def test_grid_walk_torus_regular(self):
        walk = grid_walk(4, torus=True, lazy=False)
        pi = walk.stationary_distribution()
        assert pi == pytest.approx([1 / 16] * 16)

    def test_grid_walk_too_small(self):
        with pytest.raises(ValueError):
            grid_walk(1)


class TestSamplePath:
    def test_length(self):
        chain = two_state_chain(0.3, 0.3)
        path = sample_path(chain, 10, rng=0)
        assert len(path) == 10

    def test_initial_state_respected(self):
        chain = two_state_chain(0.3, 0.3)
        path = sample_path(chain, 5, initial_state="on", rng=0)
        assert path[0] == "on"

    def test_deterministic_cycle(self):
        from repro.markov.chain import MarkovChain

        cycle = MarkovChain([[0, 1, 0], [0, 0, 1], [1, 0, 0]])
        path = sample_path(cycle, 6, initial_state=0, rng=0)
        assert path == [0, 1, 2, 0, 1, 2]

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            sample_path(uniform_chain(3), 0)

    def test_transitions_have_positive_probability(self):
        chain = two_state_chain(0.3, 0.4)
        path = sample_path(chain, 50, rng=1)
        for a, b in zip(path, path[1:]):
            assert chain.transition_probability(a, b) > 0


class TestSampleStates:
    def test_vectorised_step_valid_indices(self):
        chain = uniform_chain(4)
        rng = np.random.default_rng(0)
        current = np.zeros(100, dtype=int)
        nxt = sample_states(chain, current, rng)
        assert nxt.shape == (100,)
        assert nxt.min() >= 0 and nxt.max() < 4

    def test_deterministic_chain_vectorised(self):
        from repro.markov.chain import MarkovChain

        cycle = MarkovChain([[0, 1, 0], [0, 0, 1], [1, 0, 0]])
        rng = np.random.default_rng(0)
        nxt = sample_states(cycle, np.array([0, 1, 2]), rng)
        assert list(nxt) == [1, 2, 0]

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            sample_states(uniform_chain(3), np.array([5]), np.random.default_rng(0))

    def test_matches_precomputed_cumulative(self):
        chain = uniform_chain(5)
        cumulative = np.cumsum(chain.transition_matrix, axis=1)
        rng_a = np.random.default_rng(3)
        rng_b = np.random.default_rng(3)
        a = sample_states(chain, np.arange(5), rng_a)
        b = sample_states(chain, np.arange(5), rng_b, cumulative=cumulative)
        assert np.array_equal(a, b)


class TestStationarySampling:
    def test_sample_count(self):
        samples = sample_stationary_state(two_state_chain(0.5, 0.5), 40, rng=0)
        assert samples.shape == (40,)

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            sample_stationary_state(uniform_chain(3), -1)

    def test_empirical_distribution_close_to_pi(self):
        chain = two_state_chain(0.1, 0.4)  # pi = (0.8, 0.2)
        indices = sample_stationary_state(chain, 4000, rng=1)
        labels = [chain.states[i] for i in indices]
        dist = empirical_state_distribution(chain, labels)
        assert dist == pytest.approx([0.8, 0.2], abs=0.05)

    def test_empirical_distribution_empty_raises(self):
        with pytest.raises(ValueError):
            empirical_state_distribution(uniform_chain(2), [])
