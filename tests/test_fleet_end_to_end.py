"""End-to-end fleet execution tests: spool → workers → fan-in byte-identity.

The fleet's headline contract: ``K`` shard jobs drained by any number of
workers — including after crashes and lease-expiry requeues — merge into a
store (and assemble into a report) byte-identical to a one-shot unsharded
run of the same workload.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.engine import Engine, ResultStore
from repro.experiments.pipeline import compile_experiment, execute_plan
from repro.experiments.runner import measure_flooding_sweep
from repro.fleet import (
    FleetError,
    JobSpool,
    experiment_job_payloads,
    format_status,
    merge_fleet_stores,
    run_fleet,
    run_worker,
    spool_status,
    sweep_job_payloads,
)
from repro.sweeps import SWEEP_FAMILIES

FAMILY = "edge-meg"
NODES = [16, 24]
TRIALS = 6
SEED = 7
KWARGS = {"q": 0.5, "avg_degree": 4.0}


def _reference_store(directory) -> ResultStore:
    """The unsharded run's store, compacted to canonical sorted-key bytes."""
    store = ResultStore(str(directory))
    measure_flooding_sweep(
        SWEEP_FAMILIES[FAMILY],
        NODES,
        num_trials=TRIALS,
        rng=SEED,
        engine=Engine(store=store),
        factory_kwargs=KWARGS,
    )
    store.compact()
    return store


def _sweep_payloads(shards: int) -> list[dict]:
    return sweep_job_payloads(
        FAMILY, NODES, TRIALS, SEED, shards, factory_kwargs=KWARGS
    )


def _store_bytes(store: ResultStore) -> bytes:
    with open(store.path, "rb") as handle:
        return handle.read()


class TestFleetSweepByteIdentity:
    def test_local_worker_fleet_matches_unsharded_run(self, tmp_path):
        """2 spawned workers drain a 3-shard sweep; merged store is identical."""
        payloads = _sweep_payloads(shards=3)
        spool = JobSpool(tmp_path / "spool", lease_ttl=30.0)
        outcome = run_fleet(
            spool, payloads, local_workers=2, poll=0.1, max_wait=300.0, log=lambda *_: None
        )
        assert outcome.ok
        assert sorted(outcome.done) == sorted(p["id"] for p in payloads)

        merged = ResultStore(str(tmp_path / "merged"))
        report = merge_fleet_stores(spool, payloads, merged)
        assert report.assembled == len(NODES)
        assert report.pending_shards == 0

        reference = _reference_store(tmp_path / "reference")
        assert _store_bytes(merged) == _store_bytes(reference)

    def test_distinct_workers_partition_the_jobs(self, tmp_path):
        """No job is executed by two workers (executor-level exclusivity)."""
        payloads = _sweep_payloads(shards=6)
        spool = JobSpool(tmp_path / "spool", lease_ttl=30.0)
        outcome = run_fleet(
            spool, payloads, local_workers=2, poll=0.1, max_wait=300.0, log=lambda *_: None
        )
        assert outcome.ok
        executors = {}
        for job_id in spool.done_ids():
            outcome_record = spool.read_job("done", job_id)["outcome"]
            executors[job_id] = outcome_record["worker"]
        # Every job ran exactly once (ids are unique by construction) and
        # the executing workers are recorded per job.
        assert sorted(executors) == sorted(p["id"] for p in payloads)
        assert all(worker for worker in executors.values())


class TestCrashRecovery:
    def test_killed_workers_job_is_requeued_and_result_identical(self, tmp_path):
        """A claimed-then-abandoned job (worker killed mid-run: lease held,

        heartbeat silent) is reclaimed after lease expiry, re-executed, and
        the final merged store is still byte-identical to the unsharded run.
        """
        payloads = _sweep_payloads(shards=3)
        spool = JobSpool(tmp_path / "spool", lease_ttl=1.0, max_attempts=3)
        spool.write_config()
        for payload in payloads:
            spool.enqueue(payload)

        # The "killed" worker: claims a job, then never heartbeats again.
        victim = spool.claim("killed-worker")
        assert victim is not None

        # A healthy in-process worker drains the spool; its idle loop runs
        # requeue_expired, so it reclaims the victim's lease once the TTL
        # lapses and finishes the job itself.
        assert (
            run_worker(
                str(spool.root),
                worker_id="survivor",
                poll=0.1,
                exit_when_empty=True,
                log=lambda *_: None,
            )
            == 0
        )
        assert spool.is_drained()
        assert spool.failed_ids() == []

        recovered = spool.read_job("done", victim.id)
        assert recovered["attempts"] == 1  # exactly one expiry requeue
        assert "lease expired" in recovered["last_error"]
        assert recovered["outcome"]["worker"] == "survivor"

        merged = ResultStore(str(tmp_path / "merged"))
        merge_fleet_stores(spool, payloads, merged)
        reference = _reference_store(tmp_path / "reference")
        assert _store_bytes(merged) == _store_bytes(reference)

    def test_poison_job_exhausts_budget_and_fails_cleanly(self, tmp_path):
        spool = JobSpool(tmp_path / "spool", lease_ttl=30.0, max_attempts=2)
        spool.write_config()  # the draining worker must agree on the budget
        spool.enqueue(
            {
                "id": "poison-1",
                "kind": "sweep",
                "family": "no-such-family",
                "nodes": [8],
                "trials": 2,
                "seed": 0,
                "shard": [0, 1],
                "store": "stores/poison-1",
            }
        )
        assert (
            run_worker(
                str(spool.root),
                poll=0.05,
                exit_when_empty=True,
                log=lambda *_: None,
            )
            == 0
        )
        assert spool.failed_ids() == ["poison-1"]
        descriptor = spool.read_job("failed", "poison-1")
        assert descriptor["attempts"] == 2
        assert "no-such-family" in descriptor["last_error"]


class TestFleetExperiment:
    def test_fleet_experiment_report_matches_unsharded_run(self, tmp_path):
        payloads = experiment_job_payloads("E7", "small", 3, shards=2)
        spool = JobSpool(tmp_path / "spool", lease_ttl=30.0)
        spool.write_config()
        for payload in payloads:
            spool.enqueue(payload)
        # Drained by one in-process worker (scheduling is irrelevant to the
        # stored bytes; the multi-worker path is covered by the sweep tests).
        assert (
            run_worker(
                str(spool.root), poll=0.05, exit_when_empty=True, log=lambda *_: None
            )
            == 0
        )
        merged = ResultStore(str(tmp_path / "merged"))
        merge_fleet_stores(spool, payloads, merged)

        reference = ResultStore(str(tmp_path / "reference"))
        plan = compile_experiment("E7", scale="small", seed=3)
        run = execute_plan(plan, engine=Engine(store=reference))
        reference.compact()
        assert _store_bytes(merged) == _store_bytes(reference)

        from repro.fleet import assemble_experiment_report

        assembled = assemble_experiment_report(payloads[0], merged)
        assert assembled.as_dict() == run.report.as_dict()

    def test_merge_without_all_shards_raises(self, tmp_path):
        payloads = experiment_job_payloads("E7", "small", 3, shards=2)
        spool = JobSpool(tmp_path / "spool")
        for payload in payloads:
            spool.enqueue(payload)
        # Execute only the first job, then attempt the fan-in.
        from repro.fleet import execute_job

        job = spool.claim("w")
        execute_job(job.payload, spool)
        spool.mark_done(job.id)
        ResultStore(str(spool.resolve(payloads[1]["store"]))).touch()
        merged = ResultStore(str(tmp_path / "merged"))
        with pytest.raises(FleetError, match="missing"):
            merge_fleet_stores(spool, payloads, merged)


class TestFleetCli:
    def test_fleet_run_experiment_cli(self, tmp_path, capsys):
        """The experiment workload path end-to-end through the CLI.

        E9 compiles to zero engine jobs (proof-condition sampling runs in
        assembly), so this exercises the whole spool/worker/fan-in loop at
        minimal cost — including empty-shard stores staying mergeable.
        """
        json_path = tmp_path / "report.json"
        code = main(
            [
                "fleet", "run", "experiment", "E9",
                "--scale", "small",
                "--seed", "3",
                "--shards", "1",
                "--local-workers", "1",
                "--spool", str(tmp_path / "spool"),
                "--results-dir", str(tmp_path / "merged"),
                "--max-wait", "300",
                "--json", str(json_path),
            ]
        )
        assert code == 0
        assert "1 job(s) done" in capsys.readouterr().out
        payload = json.loads(json_path.read_text())
        assert payload["experiment_id"] == "E9"

        # Identical to the direct, non-fleet run of the same experiment.
        from repro.experiments.registry import run_experiment

        reference = run_experiment("E9", scale="small", seed=3)
        assert payload == json.loads(json.dumps(reference.as_dict()))

    def test_run_fleet_max_wait_aborts(self, tmp_path):
        spool = JobSpool(tmp_path / "spool")
        payloads = _sweep_payloads(shards=3)
        with pytest.raises(FleetError, match="max_wait"):
            # No workers anywhere: the monitor must give up, not spin.
            run_fleet(
                spool, payloads, local_workers=0, poll=0.05, max_wait=0.3,
                log=lambda *_: None,
            )
        # The spool survives for forensics.
        assert len(spool.pending_ids()) == 3

    def test_fleet_run_sweep_cli(self, tmp_path, capsys):
        merged_dir = tmp_path / "merged"
        json_path = tmp_path / "fleet.json"
        code = main(
            [
                "fleet", "run", "sweep", FAMILY,
                "--nodes", ",".join(str(n) for n in NODES),
                "--trials", str(TRIALS),
                "--seed", str(SEED),
                "--shards", "3",
                "--local-workers", "2",
                "--spool", str(tmp_path / "spool"),
                "--results-dir", str(merged_dir),
                "--max-wait", "300",
                "--json", str(json_path),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "3 job(s) done" in output
        assert "n=    16" in output

        reference = _reference_store(tmp_path / "reference")
        assert _store_bytes(ResultStore(str(merged_dir))) == _store_bytes(reference)

        payload = json.loads(json_path.read_text())
        assert payload["shards"] == 3
        assert len(payload["measurements"]) == len(NODES)
        assert all(
            len(point["samples"]) == TRIALS for point in payload["measurements"]
        )
        # Same per-point dict shape as the non-fleet `repro sweep --json`.
        assert payload["estimator"] == "single source"
        assert all(point["from_cache"] for point in payload["measurements"])

    def test_fleet_run_rejects_reused_spool(self, tmp_path, capsys):
        spool = JobSpool(tmp_path / "spool")
        for payload in _sweep_payloads(shards=3):
            spool.enqueue(payload)
        code = main(
            [
                "fleet", "run", "sweep", FAMILY,
                "--nodes", ",".join(str(n) for n in NODES),
                "--trials", str(TRIALS),
                "--seed", str(SEED),
                "--shards", "3",
                "--spool", str(tmp_path / "spool"),
                "--results-dir", str(tmp_path / "merged"),
            ]
        )
        assert code == 1
        assert "already exists" in capsys.readouterr().err

    def test_fleet_run_requires_results_dir(self, tmp_path, capsys):
        code = main(
            [
                "fleet", "run", "sweep", FAMILY,
                "--shards", "2",
                "--spool", str(tmp_path / "spool"),
            ]
        )
        assert code == 2
        assert "--results-dir" in capsys.readouterr().err

    def test_fleet_rejects_more_shards_than_trials(self, tmp_path, capsys):
        code = main(
            [
                "fleet", "run", "sweep", FAMILY,
                "--trials", "2",
                "--shards", "5",
                "--spool", str(tmp_path / "spool"),
                "--results-dir", str(tmp_path / "merged"),
            ]
        )
        assert code == 1
        assert "exceeds trials" in capsys.readouterr().err

    def test_worker_cli_drains_empty_spool(self, tmp_path, capsys):
        JobSpool(tmp_path / "spool")
        code = main(
            ["worker", "--spool", str(tmp_path / "spool"), "--exit-when-empty"]
        )
        assert code == 0
        assert "exiting after 0 job(s)" in capsys.readouterr().out

    def test_fleet_status_cli(self, tmp_path, capsys):
        spool = JobSpool(tmp_path / "spool", lease_ttl=45.0)
        spool.write_config()
        for payload in _sweep_payloads(shards=3):
            spool.enqueue(payload)
        spool.claim("busy-worker")
        assert main(["fleet", "status", str(tmp_path / "spool")]) == 0
        output = capsys.readouterr().out
        assert "3 total" in output
        assert "2 pending, 1 active" in output
        assert "busy-worker" in output

    def test_fleet_status_missing_spool(self, tmp_path, capsys):
        assert main(["fleet", "status", str(tmp_path / "nope")]) == 2
        assert "no spool directory" in capsys.readouterr().err


class TestFleetResume:
    def test_resume_reuses_done_jobs_and_finishes_the_rest(self, tmp_path):
        """A partially drained spool resumes: done work kept, rest executed."""
        payloads = _sweep_payloads(shards=3)
        spool = JobSpool(tmp_path / "spool", lease_ttl=30.0)
        spool.write_config()
        spool.enqueue(payloads[0])
        assert (
            run_worker(
                str(spool.root), worker_id="first-run", poll=0.05,
                exit_when_empty=True, log=lambda *_: None,
            )
            == 0
        )

        outcome = run_fleet(
            spool, payloads, local_workers=1, poll=0.1, max_wait=300.0,
            log=lambda *_: None, resume=True,
        )
        assert outcome.ok
        assert sorted(outcome.done) == sorted(p["id"] for p in payloads)
        # The first run's completed job was reused, not re-executed.
        assert spool.read_job("done", payloads[0]["id"])["outcome"]["worker"] == "first-run"

        merged = ResultStore(str(tmp_path / "merged"))
        merge_fleet_stores(spool, payloads, merged)
        reference = _reference_store(tmp_path / "reference")
        assert _store_bytes(merged) == _store_bytes(reference)

    def test_resume_resurrects_failed_jobs(self, tmp_path):
        """Jobs parked in failed/ get a fresh retry budget on resume."""
        payloads = _sweep_payloads(shards=2)
        spool = JobSpool(tmp_path / "spool", lease_ttl=30.0, max_attempts=1)
        spool.write_config()
        spool.enqueue(payloads[0])
        job = spool.claim("flaky-worker")
        spool.mark_failed(job.id, "transient infrastructure failure")
        assert spool.failed_ids() == [payloads[0]["id"]]

        outcome = run_fleet(
            spool, payloads, local_workers=1, poll=0.1, max_wait=300.0,
            log=lambda *_: None, resume=True,
        )
        assert outcome.ok
        assert spool.failed_ids() == []

        merged = ResultStore(str(tmp_path / "merged"))
        merge_fleet_stores(spool, payloads, merged)
        reference = _reference_store(tmp_path / "reference")
        assert _store_bytes(merged) == _store_bytes(reference)

    def test_resume_re_runs_done_job_whose_store_vanished(self, tmp_path):
        """done/ is only trusted if the job's store still holds its records."""
        import shutil

        payloads = _sweep_payloads(shards=2)
        spool = JobSpool(tmp_path / "spool", lease_ttl=30.0)
        spool.write_config()
        spool.enqueue(payloads[0])
        assert (
            run_worker(
                str(spool.root), poll=0.05, exit_when_empty=True, log=lambda *_: None
            )
            == 0
        )
        shutil.rmtree(spool.resolve(payloads[0]["store"]))

        outcome = run_fleet(
            spool, payloads, local_workers=1, poll=0.1, max_wait=300.0,
            log=lambda *_: None, resume=True,
        )
        assert outcome.ok
        merged = ResultStore(str(tmp_path / "merged"))
        merge_fleet_stores(spool, payloads, merged)
        reference = _reference_store(tmp_path / "reference")
        assert _store_bytes(merged) == _store_bytes(reference)

    def test_fleet_run_resume_cli(self, tmp_path, capsys):
        """`repro fleet run --resume` accepts the spool a prior run drained."""
        argv = [
            "fleet", "run", "sweep", FAMILY,
            "--nodes", ",".join(str(n) for n in NODES),
            "--trials", str(TRIALS),
            "--seed", str(SEED),
            "--shards", "2",
            "--local-workers", "1",
            "--spool", str(tmp_path / "spool"),
            "--results-dir", str(tmp_path / "merged"),
            "--max-wait", "300",
        ]
        assert main(argv) == 0
        capsys.readouterr()
        # Without --resume the reused spool is rejected; with it, the fully
        # drained spool satisfies the run without executing anything.
        assert main(argv) == 1
        assert "already exists" in capsys.readouterr().err
        assert main(argv + ["--resume"]) == 0
        assert "2 job(s) done" in capsys.readouterr().out

        reference = _reference_store(tmp_path / "reference")
        assert _store_bytes(ResultStore(str(tmp_path / "merged"))) == _store_bytes(reference)


class TestStatusFormatting:
    def test_format_status_sections(self, tmp_path):
        spool = JobSpool(tmp_path / "spool", lease_ttl=10.0, max_attempts=1)
        for payload in _sweep_payloads(shards=3):
            spool.enqueue(payload)
        job = spool.claim("w1")
        spool.mark_failed(job.id, "boom")  # budget of 1: straight to failed
        spool.claim("w2")
        status = spool_status(spool)
        assert status.total == 3
        assert not status.drained
        text = format_status(status)
        assert "1 pending, 1 active, 0 done, 1 failed" in text
        assert "worker=w2" in text
        assert "boom" in text
