"""Property-based tests (hypothesis) for the Markov-chain substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.markov.builders import two_state_chain
from repro.markov.chain import MarkovChain
from repro.markov.mixing import mixing_time, spectral_gap, tv_distance_from_stationarity


@st.composite
def stochastic_matrices(draw, max_states: int = 6):
    """Random row-stochastic matrices with strictly positive entries.

    Strict positivity guarantees irreducibility and aperiodicity, so the
    stationary distribution exists and the mixing time is finite.
    """
    k = draw(st.integers(min_value=2, max_value=max_states))
    rows = []
    for _ in range(k):
        raw = draw(
            st.lists(
                st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
                min_size=k,
                max_size=k,
            )
        )
        row = np.asarray(raw)
        rows.append(row / row.sum())
    return np.vstack(rows)


class TestStationaryDistributionProperties:
    @given(matrix=stochastic_matrices())
    @settings(max_examples=40, deadline=None)
    def test_stationary_is_probability_vector(self, matrix):
        chain = MarkovChain(matrix)
        pi = chain.stationary_distribution()
        assert pi.min() >= -1e-12
        assert pi.sum() == pytest.approx(1.0)

    @given(matrix=stochastic_matrices())
    @settings(max_examples=40, deadline=None)
    def test_stationary_is_invariant(self, matrix):
        chain = MarkovChain(matrix)
        pi = chain.stationary_distribution()
        assert np.allclose(pi @ chain.transition_matrix, pi, atol=1e-8)

    @given(matrix=stochastic_matrices())
    @settings(max_examples=30, deadline=None)
    def test_lazy_chain_preserves_stationary(self, matrix):
        chain = MarkovChain(matrix)
        lazy = chain.lazy(0.3)
        assert np.allclose(
            lazy.stationary_distribution(), chain.stationary_distribution(), atol=1e-6
        )


class TestMixingProperties:
    @given(matrix=stochastic_matrices(max_states=5))
    @settings(max_examples=30, deadline=None)
    def test_tv_distance_monotone_nonincreasing(self, matrix):
        chain = MarkovChain(matrix)
        distances = [tv_distance_from_stationarity(chain, t) for t in range(5)]
        for earlier, later in zip(distances, distances[1:]):
            assert later <= earlier + 1e-9

    @given(matrix=stochastic_matrices(max_states=5))
    @settings(max_examples=30, deadline=None)
    def test_mixing_time_definition(self, matrix):
        chain = MarkovChain(matrix)
        t = mixing_time(chain, epsilon=0.25)
        assert tv_distance_from_stationarity(chain, t) <= 0.25
        if t > 0:
            assert tv_distance_from_stationarity(chain, t - 1) > 0.25

    @given(matrix=stochastic_matrices(max_states=5))
    @settings(max_examples=30, deadline=None)
    def test_spectral_gap_in_unit_interval(self, matrix):
        gap = spectral_gap(MarkovChain(matrix))
        assert -1e-9 <= gap <= 1.0 + 1e-9


class TestTwoStateChainProperties:
    @given(
        p=st.floats(min_value=0.01, max_value=1.0),
        q=st.floats(min_value=0.01, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_two_state_stationary_closed_form(self, p, q):
        chain = two_state_chain(p, q)
        pi = chain.stationary_distribution()
        assert pi[0] == pytest.approx(q / (p + q), abs=1e-8)
        assert pi[1] == pytest.approx(p / (p + q), abs=1e-8)

    @given(
        p=st.floats(min_value=0.01, max_value=0.99),
        q=st.floats(min_value=0.01, max_value=0.99),
    )
    @settings(max_examples=60, deadline=None)
    def test_two_state_gap_closed_form(self, p, q):
        chain = two_state_chain(p, q)
        assert spectral_gap(chain) == pytest.approx(min(p + q, 2 - p - q), abs=1e-8)

    @given(
        p=st.floats(min_value=0.05, max_value=0.95),
        q=st.floats(min_value=0.05, max_value=0.95),
    )
    @settings(max_examples=40, deadline=None)
    def test_two_state_reversible(self, p, q):
        assert two_state_chain(p, q).is_reversible()
