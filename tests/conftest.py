"""Shared pytest configuration and fixtures for the test suite."""

from __future__ import annotations

import os
import sys

import numpy as np
import pytest

# Allow running the tests straight from a source checkout (before
# ``pip install -e .``) by putting the src layout on the path.
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic NumPy generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_edge_meg():
    """A small, sparse classic edge-MEG used by several test modules."""
    from repro.meg.edge_meg import EdgeMEG

    return EdgeMEG(40, p=0.05, q=0.5)


@pytest.fixture
def small_grid_graph():
    """A 4x4 grid mobility graph."""
    from repro.graphs.grid import grid_graph

    return grid_graph(4)
