"""Adaptive sampling end-to-end: engine stopping, sketches, fleet sizing.

The adaptive contracts introduced with :mod:`repro.stats.sequential`:

* a stopping rule's realized trial count depends only on the seed and the
  rule — never on worker count or executor kind;
* a stopped run persists enough state (realized trials, stopping metadata,
  sketch) to be reproduced and re-served from the store;
* sequential stopping refuses trial-sharding everywhere (engine, fleet),
  and the fleet's adaptive path — pilot round → variance-sized fixed
  budgets — round-trips through the normal byte-identical shard machinery.
"""

from __future__ import annotations

import json

import pytest

from repro.api import (
    InvalidParameterError,
    SchemaError,
    WorkRequest,
    compile_request,
    sweep_request,
)
from repro.engine import (
    Engine,
    ResultStore,
    ShardSpec,
    StoppingRule,
    TrialSpec,
    batch_store_key,
)
from repro.experiments.runner import measurement_from_record, run_sweep_specs
from repro.fleet import (
    JobSpool,
    execute_job,
    merge_fleet_stores,
    plan_variance_budgets,
    request_job_payloads,
)
from repro.meg.edge_meg import EdgeMEG
from repro.stats.sequential import sketch_from_samples, sketch_salt


def make_edge_meg(num_nodes: int) -> EdgeMEG:
    """Module-level factory (picklable, usable with workers > 1)."""
    return EdgeMEG(num_nodes, p=0.1, q=0.3)


RULE = StoppingRule(target_halfwidth=0.5, min_trials=8, check_every=8)


def adaptive_spec(budget: int = 64, stopping: StoppingRule = RULE) -> TrialSpec:
    return TrialSpec(
        factory=make_edge_meg, args=(24,), num_trials=budget, seed=11,
        stopping=stopping,
    )


class TestEngineStopping:
    def test_stops_early_within_budget(self):
        result = Engine().run(adaptive_spec())
        assert result.stopped_early
        assert result.num_trials < 64
        assert result.num_trials % RULE.check_every == 0
        assert result.num_trials >= RULE.min_trials

    def test_realized_count_worker_invariant(self):
        reference = Engine().run(adaptive_spec())
        for engine in (
            Engine(workers=4),
            Engine(workers=3, executor="thread"),
        ):
            result = engine.run(adaptive_spec())
            assert result.num_trials == reference.num_trials
            assert result.flooding_times == reference.flooding_times

    def test_adaptive_samples_prefix_of_fixed_run(self):
        adaptive = Engine().run(adaptive_spec())
        fixed = Engine().run(
            TrialSpec(factory=make_edge_meg, args=(24,), num_trials=64, seed=11)
        )
        count = adaptive.num_trials
        assert adaptive.flooding_times == fixed.flooding_times[:count]

    def test_budget_exhaustion_not_marked_early(self):
        tight = StoppingRule(target_halfwidth=1e-6, min_trials=8, check_every=8)
        result = Engine().run(adaptive_spec(budget=16, stopping=tight))
        assert result.num_trials == 16
        assert not result.stopped_early

    def test_store_roundtrip_preserves_stopping_state(self, tmp_path):
        store = ResultStore(str(tmp_path / "adaptive"))
        first = Engine(store=store).run(adaptive_spec())
        again = Engine(store=store).run(adaptive_spec())
        assert again.from_cache
        assert again.stopped_early == first.stopped_early
        assert again.num_trials == first.num_trials
        assert again.flooding_times == first.flooding_times
        record = store.get(batch_store_key(adaptive_spec()))
        assert record["stopping"]["realized_trials"] == first.num_trials
        assert record["stopping"]["budget"] == 64
        assert record["sketch"]["moments"]["count"] == first.num_trials

    def test_stopping_changes_cache_key(self):
        fixed = TrialSpec(factory=make_edge_meg, args=(24,), num_trials=64, seed=11)
        assert batch_store_key(adaptive_spec()) != batch_store_key(fixed)

    def test_run_shard_rejects_multiway_and_delegates_oneway(self):
        engine = Engine()
        with pytest.raises(ValueError, match="cannot be trial-sharded"):
            engine.run_shard(ShardSpec(adaptive_spec(), 0, 2))
        sharded = engine.run_shard(ShardSpec(adaptive_spec(), 0, 1))
        direct = engine.run(adaptive_spec())
        assert sharded.flooding_times == direct.flooding_times


class TestSketchRecords:
    def test_sharded_sketch_merge_byte_identical(self, tmp_path):
        spec = TrialSpec(factory=make_edge_meg, args=(20,), num_trials=12, seed=3)
        whole_store = ResultStore(str(tmp_path / "whole"))
        Engine(store=whole_store, sketch=True).run(spec)
        whole = whole_store.get(batch_store_key(spec))

        shard_stores = [ResultStore(str(tmp_path / f"s{i}")) for i in range(3)]
        for index, store in enumerate(shard_stores):
            Engine(store=store, sketch=True).run_shard(ShardSpec(spec, index, 3))
        merged = ResultStore(str(tmp_path / "merged"))
        merged.merge(*shard_stores)
        assembled = merged.get(batch_store_key(spec))
        assert assembled["sketch"] == whole["sketch"]
        assert assembled["flooding_times"] == whole["flooding_times"]

    def test_measurement_from_sketch_only_record(self):
        spec = TrialSpec(factory=make_edge_meg, args=(20,), num_trials=10, seed=5)
        result = Engine().run(spec)
        salt = sketch_salt({"probe": 5})
        record = {
            "num_nodes": 20,
            "num_trials": result.num_trials,
            "sketch": sketch_from_samples(result.flooding_times, salt),
        }
        measurement = measurement_from_record(spec, record)
        assert measurement.samples == ()
        assert measurement.summary.count == result.num_trials
        assert measurement.summary.mean == pytest.approx(
            sum(result.flooding_times) / len(result.flooding_times)
        )


class TestApiRoundTrip:
    def test_stopping_request_roundtrip(self):
        request = sweep_request(
            "edge-meg", [16, 24], 64, seed=7, stopping={"target_halfwidth": 0.5}
        )
        clone = WorkRequest.from_dict(json.loads(json.dumps(request.as_dict())))
        assert clone.stopping == request.stopping
        plan = compile_request(clone)
        assert all(job.spec.stopping == request.stopping for job in plan.jobs)

    def test_per_point_trials_roundtrip(self):
        request = sweep_request("edge-meg", [16, 24], [6, 10], seed=7)
        assert request.trials == (6, 10)
        clone = WorkRequest.from_dict(json.loads(json.dumps(request.as_dict())))
        assert clone.trials == (6, 10)
        plan = compile_request(clone)
        assert [job.spec.num_trials for job in plan.jobs] == [6, 10]

    def test_per_point_trials_validation(self):
        with pytest.raises(InvalidParameterError):
            sweep_request("edge-meg", [16, 24], [6], seed=7)
        with pytest.raises(InvalidParameterError):
            sweep_request("edge-meg", [16, 24], [6, 0], seed=7)

    def test_stopping_rejected_outside_sweeps(self):
        with pytest.raises(SchemaError):
            WorkRequest(
                kind="flood", family="edge-meg", trials=4,
                stopping=StoppingRule(target_halfwidth=1.0),
            )

    def test_invalid_stopping_payload(self):
        with pytest.raises(InvalidParameterError):
            sweep_request("edge-meg", [16], 8, stopping={"bogus": 1})


class TestFleetAdaptive:
    def test_stopping_request_refuses_sharding(self):
        request = sweep_request(
            "edge-meg", [16], 32, seed=7, stopping={"target_halfwidth": 0.5}
        )
        with pytest.raises(InvalidParameterError, match="cannot be trial-sharded"):
            request_job_payloads(request, 2)
        assert len(request_job_payloads(request, 1)) == 1

    def test_plan_variance_budgets_derives_fixed_request(self):
        request = sweep_request("edge-meg", [16, 24], 64, seed=7)
        derived, report = plan_variance_budgets(
            request, 0.4, pilot_trials=8, confidence=0.95
        )
        assert derived.stopping is None
        assert isinstance(derived.trials, tuple)
        assert len(derived.trials) == 2
        assert all(8 <= budget <= 64 for budget in derived.trials)
        assert report["total_budget"] == sum(derived.trials)
        assert report["fixed_total"] == 128
        assert [p["budget"] for p in report["points"]] == list(derived.trials)

    def test_plan_variance_budgets_rejects_store_engine(self, tmp_path):
        request = sweep_request("edge-meg", [16], 32, seed=7)
        engine = Engine(store=ResultStore(str(tmp_path / "polluted")))
        with pytest.raises(ValueError, match="store"):
            plan_variance_budgets(request, 0.4, engine=engine)

    def test_sized_budgets_roundtrip_through_fleet(self, tmp_path):
        request = sweep_request("edge-meg", [16, 24], 32, seed=7)
        derived, _ = plan_variance_budgets(request, 0.4, pilot_trials=8)

        # Reference: run the derived per-point budgets directly.
        plan = compile_request(derived)
        reference = run_sweep_specs([job.spec for job in plan.jobs], engine=Engine())

        # Fleet: shard the derived request, execute each job, fan in.
        spool = JobSpool(str(tmp_path / "spool"))
        payloads = request_job_payloads(derived, 2)
        for payload in payloads:
            spool.resolve(payload["store"])
            execute_job(payload, spool)
        destination = ResultStore(str(tmp_path / "merged"))
        merge_fleet_stores(spool, payloads, destination)

        fleet_measurements = [
            measurement_from_record(job.spec, destination.get(batch_store_key(job.spec)))
            for job in plan.jobs
        ]
        assert [m.samples for m in fleet_measurements] == [
            m.samples for m in reference
        ]

    def test_pilot_trials_prefix_of_sized_run(self):
        # Seed-prefix determinism: the pilot's samples are an exact prefix
        # of the sized run's, so pilot work is never statistically wasted.
        request = sweep_request("edge-meg", [16], 32, seed=7)
        derived, report = plan_variance_budgets(request, 0.4, pilot_trials=8)
        from dataclasses import replace

        plan = compile_request(derived)
        sized = Engine().run(plan.jobs[0].spec)
        pilot = Engine().run(replace(plan.jobs[0].spec, num_trials=8))
        assert pilot.flooding_times == sized.flooding_times[:8]
        assert report["points"][0]["pilot_mean"] == pytest.approx(
            sum(pilot.flooding_times) / 8
        )
