"""Property-based tests (hypothesis) for dynamic-graph models and geometry."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.grid import augmented_grid_graph, grid_graph, manhattan_distance
from repro.graphs.paths import edge_paths, shortest_path_family
from repro.markov.builders import complete_graph_walk
from repro.meg.edge_meg import EdgeMEG
from repro.meg.node_meg import NodeMEG
from repro.mobility.connection import radius_edges
from repro.mobility.geometry import SquareRegion
from repro.mobility.random_waypoint import RandomWaypoint


class TestEdgeMegProperties:
    @given(
        n=st.integers(min_value=2, max_value=30),
        p=st.floats(min_value=0.0, max_value=1.0),
        q=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=10_000),
        steps=st.integers(min_value=0, max_value=10),
    )
    @settings(max_examples=50, deadline=None)
    def test_snapshot_edges_always_canonical(self, n, p, q, seed, steps):
        if p == 0.0 and q == 0.0:
            p = 0.5
        model = EdgeMEG(n, p=p, q=q)
        model.reset(seed)
        model.run(steps)
        for i, j in model.current_edges():
            assert 0 <= i < j < n

    @given(
        n=st.integers(min_value=2, max_value=25),
        p=st.floats(min_value=0.01, max_value=0.99),
        q=st.floats(min_value=0.01, max_value=0.99),
    )
    @settings(max_examples=40, deadline=None)
    def test_stationary_probability_formula(self, n, p, q):
        model = EdgeMEG(n, p=p, q=q)
        assert model.stationary_edge_probability() == pytest.approx(p / (p + q))


class TestNodeMegProperties:
    @given(
        num_states=st.integers(min_value=2, max_value=12),
        n=st.integers(min_value=2, max_value=25),
    )
    @settings(max_examples=30, deadline=None)
    def test_eta_at_least_one_for_colocation(self, num_states, n):
        chain = complete_graph_walk(num_states)
        model = NodeMEG(n, chain, np.eye(num_states, dtype=bool))
        # Jensen: P_NM2 = E[q^2] >= (E[q])^2 = P_NM^2.
        assert model.eta() >= 1.0 - 1e-9

    @given(
        num_states=st.integers(min_value=2, max_value=10),
        n=st.integers(min_value=2, max_value=20),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_edges_consistent_with_states(self, num_states, n, seed):
        chain = complete_graph_walk(num_states)
        model = NodeMEG(n, chain, np.eye(num_states, dtype=bool))
        model.reset(seed)
        states = model.node_states()
        for i, j in model.current_edges():
            assert states[i] == states[j]


class TestGridProperties:
    @given(side=st.integers(min_value=2, max_value=8), k=st.integers(min_value=1, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_augmented_grid_edge_count_monotone_in_k(self, side, k):
        smaller = augmented_grid_graph(side, k)
        larger = augmented_grid_graph(side, k + 1)
        assert larger.number_of_edges() >= smaller.number_of_edges()

    @given(
        side=st.integers(min_value=2, max_value=8),
        a=st.tuples(st.integers(0, 7), st.integers(0, 7)),
        b=st.tuples(st.integers(0, 7), st.integers(0, 7)),
    )
    @settings(max_examples=50, deadline=None)
    def test_manhattan_distance_is_metric(self, side, a, b):
        a = (a[0] % side, a[1] % side)
        b = (b[0] % side, b[1] % side)
        assert manhattan_distance(a, b) == manhattan_distance(b, a)
        assert manhattan_distance(a, a) == 0
        assert manhattan_distance(a, b, side=side) <= manhattan_distance(a, b)


class TestPathFamilyProperties:
    @given(side=st.integers(min_value=2, max_value=4))
    @settings(max_examples=10, deadline=None)
    def test_shortest_path_family_regularity_at_least_one(self, side):
        family = shortest_path_family(grid_graph(side))
        assert family.regularity() >= 1.0 - 1e-9

    @given(side=st.integers(min_value=2, max_value=5))
    @settings(max_examples=10, deadline=None)
    def test_edge_paths_congestion_is_degree(self, side):
        graph = grid_graph(side)
        family = edge_paths(graph)
        for node in graph.nodes():
            assert family.passes_through(node) == graph.degree(node)


class TestGeometryProperties:
    @given(
        count=st.integers(min_value=1, max_value=40),
        radius=st.floats(min_value=0.01, max_value=3.0),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_radius_edges_match_brute_force(self, count, radius, seed):
        rng = np.random.default_rng(seed)
        positions = rng.random((count, 2)) * 5.0
        fast = set(radius_edges(positions, radius))
        brute = {
            (i, j)
            for i in range(count)
            for j in range(i + 1, count)
            if np.linalg.norm(positions[i] - positions[j]) <= radius
        }
        assert fast == brute

    @given(
        side=st.floats(min_value=1.0, max_value=20.0),
        radius=st.floats(min_value=0.0, max_value=5.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_eroded_volume_bounds(self, side, radius):
        region = SquareRegion(side)
        eroded = region.eroded_volume(radius)
        assert 0.0 <= eroded <= region.volume()

    @given(
        n=st.integers(min_value=2, max_value=20),
        seed=st.integers(min_value=0, max_value=500),
        steps=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=20, deadline=None)
    def test_waypoint_positions_stay_inside(self, n, seed, steps):
        model = RandomWaypoint(n, side=5.0, radius=1.0, v_min=1.0, warmup_steps=0)
        model.reset(seed)
        model.run(steps)
        positions = model.positions()
        assert positions.min() >= -1e-9
        assert positions.max() <= 5.0 + 1e-9
