"""Tests for repro.stats.sequential: sketches, quantiles, stopping rules."""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.sequential import (
    DEFAULT_RESERVOIR,
    BatchSketch,
    MomentSketch,
    P2Quantile,
    QuantileSketch,
    StoppingRule,
    merge_sketch_payloads,
    quantile_rank_epsilon,
    sketch_from_samples,
    sketch_salt,
    summary_from_sketch,
    whp_from_sketch,
    z_score,
)
from repro.util.stats import halfwidth, summarize, whp_quantile

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)
int_samples = st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=200)
float_samples = st.lists(finite_floats, min_size=1, max_size=200)


class TestMomentSketch:
    @given(samples=float_samples)
    @settings(max_examples=60, deadline=None)
    def test_matches_exact_summary(self, samples):
        sketch = MomentSketch()
        sketch.update_many(samples)
        exact = summarize(samples)
        assert sketch.count == exact.count
        assert sketch.minimum == exact.minimum
        assert sketch.maximum == exact.maximum
        assert sketch.mean == pytest.approx(exact.mean, rel=1e-9, abs=1e-9)
        assert sketch.std == pytest.approx(exact.std, rel=1e-6, abs=1e-7)

    @given(samples=int_samples, cut=st.integers(min_value=0, max_value=200))
    @settings(max_examples=60, deadline=None)
    def test_merge_equals_single_pass(self, samples, cut):
        cut = cut % (len(samples) + 1)
        left, right = MomentSketch(), MomentSketch()
        left.update_many(samples[:cut])
        right.update_many(samples[cut:])
        left.merge(right)
        whole = MomentSketch()
        whole.update_many(samples)
        # Integer streams keep exact integer sums, so any split merges to
        # byte-identical persisted state — not merely approximately equal.
        assert left.as_dict() == whole.as_dict()

    @given(samples=int_samples)
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_preserves_state(self, samples):
        sketch = MomentSketch()
        sketch.update_many(samples)
        clone = MomentSketch.from_dict(json.loads(json.dumps(sketch.as_dict())))
        assert clone.as_dict() == sketch.as_dict()
        assert clone.mean == sketch.mean
        assert clone.variance == sketch.variance

    def test_ci_halfwidth_matches_util_stats(self):
        rng = np.random.default_rng(7)
        samples = rng.normal(50.0, 5.0, size=200)
        sketch = MomentSketch()
        sketch.update_many(samples)
        assert sketch.ci_halfwidth(0.95) == pytest.approx(
            halfwidth(sketch.std, sketch.count, 0.95)
        )

    def test_empty_and_singleton_edges(self):
        empty = MomentSketch()
        assert empty.count == 0
        one = MomentSketch()
        one.update(3.0)
        assert one.variance == 0.0
        assert one.ci_halfwidth(0.95) == float("inf")


class TestQuantileSketch:
    @given(samples=int_samples, seed=st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=40, deadline=None)
    def test_exact_when_under_capacity(self, samples, seed):
        salt = sketch_salt({"seed": seed})
        sketch = QuantileSketch.from_samples(samples, salt, capacity=512)
        if len(samples) <= 512:
            assert sorted(sketch.values()) == sorted(samples)
            assert sketch.quantile(0.5) == pytest.approx(
                float(np.quantile(np.asarray(samples, dtype=float), 0.5))
            )

    @given(
        samples=st.lists(
            st.integers(min_value=0, max_value=10_000), min_size=20, max_size=300
        ),
        parts=st.integers(min_value=2, max_value=7),
        seed=st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=40, deadline=None)
    def test_sharded_merge_is_byte_identical(self, samples, parts, seed):
        salt = sketch_salt({"seed": seed})
        whole = QuantileSketch.from_samples(samples, salt, capacity=64)
        shards = [
            QuantileSketch.from_samples(
                samples[index::parts], salt, start=index, stride=parts, capacity=64
            )
            for index in range(parts)
        ]
        merged = shards[0]
        for shard in shards[1:]:
            merged.merge(shard)
        assert merged.as_dict() == whole.as_dict()

    def test_quantiles_within_dkw_bound(self):
        rng = np.random.default_rng(11)
        samples = rng.normal(100.0, 10.0, size=20_000).tolist()
        salt = sketch_salt({"seed": 11})
        capacity = 1024
        sketch = QuantileSketch.from_samples(samples, salt, capacity=capacity)
        epsilon = quantile_rank_epsilon(capacity, 0.99)
        ordered = np.sort(np.asarray(samples))
        for q in (0.1, 0.5, 0.9):
            estimate = sketch.quantile(q)
            rank = np.searchsorted(ordered, estimate) / len(ordered)
            assert abs(rank - q) <= 2.0 * epsilon

    def test_merge_rejects_mismatched_salt_or_capacity(self):
        a = QuantileSketch.from_samples([1, 2], sketch_salt({"s": 1}), capacity=8)
        b = QuantileSketch.from_samples([1, 2], sketch_salt({"s": 2}), capacity=8)
        c = QuantileSketch.from_samples([1, 2], sketch_salt({"s": 1}), capacity=16)
        with pytest.raises(ValueError):
            a.merge(b)
        with pytest.raises(ValueError):
            a.merge(c)


class TestP2Quantile:
    def test_exact_under_five_observations(self):
        est = P2Quantile(0.5)
        for value in (5.0, 1.0, 3.0):
            est.update(value)
        assert est.value == pytest.approx(3.0)

    def test_converges_to_true_median(self):
        rng = np.random.default_rng(3)
        samples = rng.normal(0.0, 1.0, size=50_000)
        est = P2Quantile(0.5)
        for value in samples:
            est.update(float(value))
        assert abs(est.value - float(np.median(samples))) < 0.05


class TestBatchSketch:
    @given(
        samples=st.lists(
            st.integers(min_value=1, max_value=500), min_size=2, max_size=120
        ),
        seed=st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=40, deadline=None)
    def test_summary_matches_exact_in_reservoir_regime(self, samples, seed):
        # Under DEFAULT_RESERVOIR samples the reservoir holds everything, so
        # the sketch summary must equal the exact one field for field.
        assert len(samples) <= DEFAULT_RESERVOIR
        salt = sketch_salt({"seed": seed})
        payload = sketch_from_samples(samples, salt)
        sketched = summary_from_sketch(payload).as_dict()
        exact = summarize(samples).as_dict()
        # std may differ from np.std by an ulp: the sketch derives variance
        # from exact integer sums, numpy from a two-pass float reduction.
        assert sketched.pop("std") == pytest.approx(exact.pop("std"), rel=1e-12)
        assert sketched == exact
        assert whp_from_sketch(payload, 100) == pytest.approx(
            whp_quantile(samples, 100)
        )

    def test_merge_payloads_associative(self):
        rng = np.random.default_rng(5)
        samples = rng.integers(1, 400, size=900).tolist()
        salt = sketch_salt({"seed": 5})
        parts = [
            sketch_from_samples(samples[i::3], salt, start=i, stride=3)
            for i in range(3)
        ]
        forward = merge_sketch_payloads(parts)
        backward = merge_sketch_payloads(list(reversed(parts)))
        whole = sketch_from_samples(samples, salt)
        assert forward == whole
        assert backward == whole

    def test_schema_mismatch_rejected(self):
        payload = sketch_from_samples([1, 2, 3], sketch_salt({"s": 0}))
        payload["schema"] = 999
        with pytest.raises(ValueError):
            BatchSketch.from_dict(payload)


class TestStoppingRule:
    def test_validation(self):
        with pytest.raises(ValueError):
            StoppingRule(target_halfwidth=0.0)
        with pytest.raises(ValueError):
            StoppingRule(target_halfwidth=1.0, confidence=1.0)
        with pytest.raises(ValueError):
            StoppingRule(target_halfwidth=1.0, min_trials=1)
        with pytest.raises(ValueError):
            StoppingRule(target_halfwidth=1.0, check_every=0)

    def test_roundtrip_and_cache_token(self):
        rule = StoppingRule(target_halfwidth=2.5, confidence=0.9, min_trials=8)
        clone = StoppingRule.from_dict(json.loads(json.dumps(rule.as_dict())))
        assert clone == rule
        assert clone.cache_token() == rule.cache_token()

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError):
            StoppingRule.from_dict({"target_halfwidth": 1.0, "bogus": 1})
        with pytest.raises(ValueError):
            StoppingRule.from_dict({"confidence": 0.9})

    def test_satisfied_tracks_halfwidth(self):
        rule = StoppingRule(target_halfwidth=5.0, min_trials=4, check_every=1)
        moments = MomentSketch()
        moments.update_many([10.0, 10.1, 9.9, 10.0])
        assert rule.satisfied(moments)
        spread = MomentSketch()
        spread.update_many([0.0, 100.0, 0.0, 100.0])
        assert not rule.satisfied(spread)

    def test_relative_target(self):
        rule = StoppingRule(target_halfwidth=0.1, relative=True)
        assert rule.target_for(50.0) == pytest.approx(5.0)

    def test_min_trials_gate(self):
        rule = StoppingRule(target_halfwidth=1e9, min_trials=10, check_every=1)
        moments = MomentSketch()
        moments.update_many([1.0, 1.0, 1.0])
        assert not rule.satisfied(moments)


def test_z_score_single_source():
    assert z_score(0.95) == pytest.approx(1.959963984540054)
    from repro.util.stats import z_score as util_z

    assert util_z is z_score
