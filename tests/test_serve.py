"""``repro serve`` tests: warm hits, ETags, cold spooling, backpressure.

The serving contract under test:

* a **warm** request (store keys already present) is answered by pure
  assembly — zero simulation, zero spool writes — byte-identical to what a
  direct engine run of the same request would produce;
* store-key ETags answer ``If-None-Match`` with 304, even before the
  result exists (cold), because the keys hash the full request identity;
* a **cold** request lands as deterministic-id fleet jobs on the spool, a
  plain ``repro worker`` drains it, and the poll endpoint fans the job
  stores into the service store and returns the identical payload;
* a bounded in-flight queue refuses excess cold work with 429;
* malformed bodies surface the :mod:`repro.api` taxonomy as 400 bodies.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.api import compile_request, sweep_request
from repro.engine import Engine, ResultStore, jsonify
from repro.fleet import JobSpool, run_worker
from repro.serve import SimulationService, create_server, plan_etag, request_ticket
from repro.telemetry import core as telemetry

FAMILY = "edge-meg"
NODES = [12, 16]
TRIALS = 4
SEED = 7


def _request_body(**overrides) -> dict:
    body = {
        "kind": "sweep",
        "family": FAMILY,
        "nodes": list(NODES),
        "trials": TRIALS,
        "seed": SEED,
    }
    body.update(overrides)
    return body


def _reference_payload() -> dict:
    """The request's result payload from a direct one-shot engine run."""
    plan = compile_request(sweep_request(FAMILY, NODES, TRIALS, seed=SEED))
    engine = Engine()
    records = {}
    for job in plan.jobs:
        batch = engine.run(job.spec)
        records[job.tag] = {
            "flooding_times": list(batch.flooding_times),
            "num_nodes": batch.num_nodes,
        }
    return plan.assemble(records)


def _canonical_bytes(payload: dict) -> bytes:
    """The exact response-body serialization of the HTTP layer."""
    return (json.dumps(jsonify(payload), indent=2, sort_keys=True) + "\n").encode()


def _service(tmp_path, **kwargs) -> SimulationService:
    store = ResultStore(str(tmp_path / "store"))
    spool = JobSpool(tmp_path / "spool")
    return SimulationService(store, spool, **kwargs)


def _warm(service: SimulationService) -> None:
    """Populate the service store by running the request's specs directly."""
    plan = compile_request(sweep_request(FAMILY, NODES, TRIALS, seed=SEED))
    engine = Engine(store=service.store)
    for job in plan.jobs:
        engine.run(job.spec)
    service.store.refresh()


@pytest.fixture
def metrics(tmp_path):
    """Active telemetry whose counters the service increments."""
    telemetry.enable(str(tmp_path / "telemetry"))
    yield lambda: (telemetry.metrics_snapshot() or {}).get("counters", {})
    telemetry.disable()


class TestWarmPath:
    def test_warm_request_is_answered_without_simulation(self, tmp_path, metrics):
        service = _service(tmp_path)
        _warm(service)
        records_before = len(service.store)

        result = service.submit(_request_body())
        assert result.status == 200
        assert result.headers["X-Cache"] == "hit"
        # Byte-identical to a direct engine run of the same request.
        assert _canonical_bytes(result.payload) == _canonical_bytes(_reference_payload())
        # Zero simulation: nothing spooled, nothing new stored.
        assert service.spool.counts() == {
            "jobs": 0, "active": 0, "done": 0, "failed": 0
        }
        assert len(service.store) == records_before
        assert metrics()["serve.cache.hit"] == 1
        assert "serve.cache.miss" not in metrics()

    def test_etag_conditional_get_304(self, tmp_path):
        service = _service(tmp_path)
        _warm(service)
        first = service.submit(_request_body())
        etag = first.headers["ETag"]
        assert etag.startswith('"') and etag.endswith('"')

        again = service.submit(_request_body(), if_none_match=etag)
        assert again.status == 304
        assert again.payload is None
        assert again.headers["ETag"] == etag

    def test_cold_request_still_carries_the_etag(self, tmp_path):
        """Store keys hash the request identity, so the ETag exists pre-run."""
        service = _service(tmp_path)
        plan = compile_request(sweep_request(FAMILY, NODES, TRIALS, seed=SEED))
        cold = service.submit(_request_body())
        assert cold.status == 202
        assert cold.headers["ETag"] == plan_etag(plan)
        # And a client holding that ETag can 304 without the result existing.
        conditional = service.submit(_request_body(), if_none_match=plan_etag(plan))
        assert conditional.status == 304

    def test_execution_hints_do_not_perturb_identity(self, tmp_path):
        service = _service(tmp_path)
        _warm(service)
        plain = service.submit(_request_body())
        hinted = service.submit(_request_body(shards=2, priority="batch"))
        assert hinted.status == 200
        assert hinted.headers["ETag"] == plain.headers["ETag"]


class TestColdPath:
    def test_cold_enqueue_drain_poll_round_trip(self, tmp_path, metrics):
        service = _service(tmp_path, default_shards=2)
        cold = service.submit(_request_body())
        assert cold.status == 202
        ticket = cold.payload["ticket"]
        assert cold.payload["location"] == f"/v1/requests/{ticket}"
        assert ticket == request_ticket(sweep_request(FAMILY, NODES, TRIALS, seed=SEED))
        assert metrics()["serve.cache.miss"] == 1
        assert metrics()["serve.enqueue"] == 2  # default_shards=2 jobs

        pending = service.poll(ticket)
        assert pending.status == 202
        assert pending.payload["status"] == "pending"

        run_worker(service.spool.root, poll=0.05, exit_when_empty=True)

        done = service.poll(ticket)
        assert done.status == 200
        assert done.headers["X-Cache"] == "fill"
        assert _canonical_bytes(done.payload) == _canonical_bytes(_reference_payload())
        assert metrics()["serve.cache.fill"] == 1

        # The store is now warm: a re-submit is a pure cache hit.
        warm = service.submit(_request_body())
        assert warm.status == 200
        assert warm.headers["X-Cache"] == "hit"
        assert _canonical_bytes(warm.payload) == _canonical_bytes(_reference_payload())

    def test_duplicate_submit_shares_the_spooled_jobs(self, tmp_path, metrics):
        service = _service(tmp_path)
        first = service.submit(_request_body())
        second = service.submit(_request_body())
        assert first.status == second.status == 202
        assert first.payload["ticket"] == second.payload["ticket"]
        assert service.spool.counts()["jobs"] == 1  # not doubled
        assert metrics()["serve.enqueue.duplicate"] == 1

    def test_priority_hint_orders_the_spool(self, tmp_path):
        service = _service(tmp_path, max_queue=8)
        service.submit(_request_body())  # normal → p1- prefix
        service.submit(_request_body(seed=SEED + 1, priority="interactive"))
        claimed = service.spool.claim("worker-0")
        assert claimed is not None
        # Sorted-id claim order: the interactive (p0-) job wins.
        assert claimed.id.startswith("p0-sweep-")

    def test_backpressure_429_when_queue_full(self, tmp_path, metrics):
        service = _service(tmp_path, max_queue=1)
        first = service.submit(_request_body())
        assert first.status == 202
        refused = service.submit(_request_body(seed=SEED + 1))
        assert refused.status == 429
        assert refused.headers["Retry-After"] == "1"
        assert "queue is full" in refused.payload["error"]["message"]
        assert metrics()["serve.backpressure"] == 1
        # The refused request left nothing behind.
        assert service.spool.counts()["jobs"] == 1

    def test_restarted_service_still_answers_old_tickets(self, tmp_path):
        service = _service(tmp_path)
        ticket = service.submit(_request_body()).payload["ticket"]
        # A new service instance over the same directories (server restart).
        reborn = SimulationService(service.store, service.spool)
        assert reborn.poll(ticket).status == 202
        run_worker(service.spool.root, poll=0.05, exit_when_empty=True)
        assert reborn.poll(ticket).status == 200


class TestErrorSurfaces:
    def test_unknown_ticket_404(self, tmp_path):
        service = _service(tmp_path)
        result = service.poll("feedfacedeadbeef")
        assert result.status == 404
        assert "unknown ticket" in result.payload["error"]["message"]

    @pytest.mark.parametrize(
        "body, expected_type, fragment",
        [
            ({"kind": "tournament"}, "SchemaError", "request kind"),
            (_request_body(family="moebius"), "UnknownFamilyError", "unknown sweep family"),
            (_request_body(bogus=1), "SchemaError", "unknown sweep request field"),
            (_request_body(trials=0), "InvalidParameterError", "trials"),
            ({"kind": "experiment", "experiment_id": "E99"},
             "UnknownExperimentError", "unknown experiment"),
            (_request_body(shards=0), "InvalidParameterError", "shards"),
            (_request_body(priority="urgent"), "InvalidParameterError", "priority"),
            ([1, 2], "InvalidParameterError", "JSON object"),
        ],
        ids=["kind", "family", "field", "trials", "experiment", "shards",
             "priority", "non-object"],
    )
    def test_malformed_submissions_are_structured_400s(
        self, tmp_path, metrics, body, expected_type, fragment
    ):
        service = _service(tmp_path)
        result = service.submit(body)
        assert result.status == 400
        assert result.payload["error"]["type"] == expected_type
        assert fragment in result.payload["error"]["message"]
        assert metrics()["serve.request.invalid"] == 1
        assert service.spool.counts()["jobs"] == 0

    def test_status_endpoint_snapshot(self, tmp_path, metrics):
        service = _service(tmp_path, max_queue=5)
        service.submit(_request_body())
        result = service.status()
        assert result.status == 200
        assert result.payload["queue"] == {
            "max_queue": 5, "in_flight": 1, "default_shards": 1
        }
        assert result.payload["tickets"] == 1
        assert result.payload["metrics"]["counters"]["serve.cache.miss"] == 1


class TestHttpServer:
    def test_http_round_trip_warm_and_cold(self, tmp_path):
        service = _service(tmp_path)
        server = create_server(service, host="127.0.0.1", port=0)
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            with urllib.request.urlopen(f"{base}/healthz", timeout=10) as response:
                health = json.load(response)
                assert health["ok"] is True
                assert health["spool"]["reachable"] is True
                assert health["store"]["writable"] is True
                from repro import __version__
                assert health["version"] == __version__

            body = json.dumps(_request_body()).encode()
            post = urllib.request.Request(
                f"{base}/v1/requests", data=body,
                headers={"Content-Type": "application/json"}, method="POST",
            )
            with urllib.request.urlopen(post, timeout=30) as response:
                assert response.status == 202
                ticket = json.load(response)["ticket"]
                location = response.headers["Location"]
            assert location == f"/v1/requests/{ticket}"

            run_worker(service.spool.root, poll=0.05, exit_when_empty=True)

            with urllib.request.urlopen(f"{base}{location}", timeout=30) as response:
                assert response.status == 200
                etag = response.headers["ETag"]
                served = response.read()
            assert served == _canonical_bytes(_reference_payload())

            conditional = urllib.request.Request(
                f"{base}{location}", headers={"If-None-Match": etag}
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(conditional, timeout=10)
            assert excinfo.value.code == 304

            bad = urllib.request.Request(
                f"{base}/v1/requests", data=b"{not json",
                headers={"Content-Type": "application/json"}, method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(bad, timeout=10)
            assert excinfo.value.code == 400
            error = json.load(excinfo.value)
            assert error["error"]["type"] == "SchemaError"

            with urllib.request.urlopen(f"{base}/v1/status", timeout=10) as response:
                status = json.load(response)
            assert status["store"]["records"] > 0

            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{base}/nope", timeout=10)
            assert excinfo.value.code == 404
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)
