"""Tests for repro.mobility.geometry and repro.mobility.connection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mobility.connection import (
    UnitDiskConnection,
    neighbors_within_radius,
    radius_edges,
)
from repro.mobility.geometry import (
    SquareRegion,
    discretize_square,
    nearest_grid_index,
    torus_displacement,
    torus_distance,
)


class TestSquareRegion:
    def test_volume_and_diameter(self):
        region = SquareRegion(4.0)
        assert region.volume() == 16.0
        assert region.diameter() == pytest.approx(4.0 * np.sqrt(2.0))

    def test_invalid_side(self):
        with pytest.raises(ValueError):
            SquareRegion(0.0)

    def test_contains(self):
        region = SquareRegion(2.0)
        assert region.contains((1.0, 1.0))
        assert region.contains((0.0, 2.0))
        assert not region.contains((2.1, 1.0))
        assert not region.contains((-0.1, 1.0))

    def test_clamp(self):
        region = SquareRegion(2.0)
        assert np.allclose(region.clamp(np.array([-1.0, 3.0])), [0.0, 2.0])

    def test_eroded_volume(self):
        region = SquareRegion(10.0)
        assert region.eroded_volume(1.0) == pytest.approx(64.0)
        assert region.eroded_volume(5.0) == 0.0
        assert region.eroded_volume(0.0) == 100.0

    def test_eroded_fraction(self):
        region = SquareRegion(10.0)
        assert region.eroded_fraction(1.0) == pytest.approx(0.64)

    def test_sample_uniform_inside(self):
        region = SquareRegion(3.0)
        rng = np.random.default_rng(0)
        points = region.sample_uniform(rng, 200)
        assert points.shape == (200, 2)
        assert points.min() >= 0.0 and points.max() <= 3.0

    def test_sample_uniform_invalid_count(self):
        region = SquareRegion(3.0)
        with pytest.raises(ValueError):
            region.sample_uniform(np.random.default_rng(0), 0)

    def test_grid_points_are_cell_centres(self):
        region = SquareRegion(2.0)
        points = region.grid_points(2)
        assert points.shape == (4, 2)
        assert set(map(tuple, points.tolist())) == {
            (0.5, 0.5),
            (0.5, 1.5),
            (1.5, 0.5),
            (1.5, 1.5),
        }

    def test_grid_points_invalid_resolution(self):
        with pytest.raises(ValueError):
            SquareRegion(1.0).grid_points(0)


class TestDiscretisation:
    def test_discretize_square(self):
        points, spacing = discretize_square(4.0, 8)
        assert points.shape == (64, 2)
        assert spacing == 0.5

    def test_nearest_grid_index(self):
        assert nearest_grid_index(np.array([0.1, 0.1]), side=1.0, resolution=4) == (0, 0)
        assert nearest_grid_index(np.array([0.99, 0.99]), side=1.0, resolution=4) == (3, 3)

    def test_nearest_grid_index_clamps_outside(self):
        assert nearest_grid_index(np.array([5.0, -1.0]), side=1.0, resolution=4) == (3, 0)

    def test_nearest_grid_index_invalid_resolution(self):
        with pytest.raises(ValueError):
            nearest_grid_index(np.array([0.5, 0.5]), side=1.0, resolution=0)


class TestTorusGeometry:
    def test_short_way_around(self):
        assert torus_distance(np.array([0.1, 0.0]), np.array([9.9, 0.0]), side=10.0) == pytest.approx(0.2)

    def test_within_half_side(self):
        assert torus_distance(np.array([0.0, 0.0]), np.array([3.0, 4.0]), side=20.0) == pytest.approx(5.0)

    def test_displacement_sign(self):
        delta = torus_displacement(np.array([9.5, 0.0]), np.array([0.5, 0.0]), side=10.0)
        assert delta[0] == pytest.approx(1.0)

    def test_invalid_side(self):
        with pytest.raises(ValueError):
            torus_distance(np.zeros(2), np.ones(2), side=0.0)


class TestRadiusEdges:
    def test_simple_pairs(self):
        positions = np.array([[0.0, 0.0], [0.5, 0.0], [3.0, 0.0]])
        assert radius_edges(positions, 1.0) == [(0, 1)]

    def test_all_within_radius(self):
        positions = np.zeros((4, 2))
        assert len(radius_edges(positions, 0.1)) == 6

    def test_no_edges_when_far(self):
        positions = np.array([[0.0, 0.0], [10.0, 10.0]])
        assert radius_edges(positions, 1.0) == []

    def test_single_point(self):
        assert radius_edges(np.array([[0.0, 0.0]]), 5.0) == []

    def test_radius_zero_connects_coincident_points(self):
        # Regression: the old guard special-cased ``radius == 0`` but fell
        # through to the tree anyway; the semantics (coincident points are
        # connected at radius 0) must hold through the single tree path.
        positions = np.array([[1.0, 1.0], [1.0, 1.0], [2.0, 2.0]])
        assert radius_edges(positions, 0.0) == [(0, 1)]

    def test_radius_zero_separated_points(self):
        positions = np.array([[0.0, 0.0], [1.0, 0.0]])
        assert radius_edges(positions, 0.0) == []

    def test_prebuilt_tree_reused(self):
        from scipy.spatial import cKDTree

        rng = np.random.default_rng(3)
        positions = rng.random((20, 2)) * 3
        tree = cKDTree(positions)
        assert radius_edges(positions, 1.0, tree=tree) == radius_edges(positions, 1.0)
        assert neighbors_within_radius(
            positions, [0, 4], 1.0, tree=tree
        ) == neighbors_within_radius(positions, [0, 4], 1.0)

    def test_boundary_is_inclusive(self):
        positions = np.array([[0.0, 0.0], [1.0, 0.0]])
        assert radius_edges(positions, 1.0) == [(0, 1)]

    def test_rejects_negative_radius(self):
        with pytest.raises(ValueError):
            radius_edges(np.zeros((2, 2)), -1.0)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            radius_edges(np.zeros(4), 1.0)


class TestNeighborsWithinRadius:
    def test_excludes_sources(self):
        positions = np.array([[0.0, 0.0], [0.5, 0.0], [0.9, 0.0], [5.0, 5.0]])
        reached = neighbors_within_radius(positions, sources=[0], radius=1.0)
        assert reached == {1, 2}

    def test_empty_sources(self):
        assert neighbors_within_radius(np.zeros((3, 2)), sources=[], radius=1.0) == set()

    def test_out_of_range_source(self):
        with pytest.raises(ValueError):
            neighbors_within_radius(np.zeros((3, 2)), sources=[5], radius=1.0)


class TestUnitDiskConnection:
    def test_are_connected(self):
        rule = UnitDiskConnection(2.0)
        assert rule.are_connected(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        assert not rule.are_connected(np.array([0.0, 0.0]), np.array([3.0, 0.0]))

    def test_edges_match_radius_edges(self):
        rng = np.random.default_rng(1)
        positions = rng.random((30, 2)) * 5
        rule = UnitDiskConnection(1.0)
        assert rule.edges(positions) == radius_edges(positions, 1.0)

    def test_neighbors_of_set_consistent_with_edges(self):
        rng = np.random.default_rng(2)
        positions = rng.random((25, 2)) * 4
        rule = UnitDiskConnection(1.0)
        informed = {0, 7, 13}
        via_rule = rule.neighbors_of_set(positions, informed)
        via_edges = set()
        for i, j in rule.edges(positions):
            if i in informed:
                via_edges.add(j)
            if j in informed:
                via_edges.add(i)
        assert via_rule == via_edges - informed or via_rule == via_edges

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            UnitDiskConnection(-0.5)
