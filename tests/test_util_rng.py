"""Tests for repro.util.rng."""

from __future__ import annotations

import numpy as np
import pytest

from repro.util.rng import (
    ensure_rng,
    random_subset,
    sample_categorical,
    spawn_rngs,
    spawn_seed_sequences,
)


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).integers(1_000_000)
        b = ensure_rng(42).integers(1_000_000)
        assert a == b

    def test_different_seeds_differ(self):
        draws_a = ensure_rng(1).integers(0, 1_000_000, size=8)
        draws_b = ensure_rng(2).integers(0, 1_000_000, size=8)
        assert not np.array_equal(draws_a, draws_b)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert ensure_rng(generator) is generator

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(7)
        assert isinstance(ensure_rng(seq), np.random.Generator)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            ensure_rng("not a seed")


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_streams_are_independent(self):
        a, b = spawn_rngs(3, 2)
        assert not np.array_equal(a.integers(0, 100, 20), b.integers(0, 100, 20))

    def test_reproducible_from_seed(self):
        first = [g.integers(1_000_000) for g in spawn_rngs(9, 3)]
        second = [g.integers(1_000_000) for g in spawn_rngs(9, 3)]
        assert first == second

    def test_spawn_from_generator(self):
        generator = np.random.default_rng(1)
        children = spawn_rngs(generator, 3)
        assert len(children) == 3
        assert all(isinstance(c, np.random.Generator) for c in children)

    def test_repeated_generator_spawns_differ(self):
        # The generator path must keep producing fresh streams call after call.
        generator = np.random.default_rng(1)
        first = [g.integers(1_000_000) for g in spawn_rngs(generator, 3)]
        second = [g.integers(1_000_000) for g in spawn_rngs(generator, 3)]
        assert first != second

    def test_generator_spawns_go_through_seed_sequence(self):
        # Guards against the old raw-integer-seed path (birthday collisions):
        # children of a Generator must be SeedSequence children of its own
        # bit_generator.seed_seq.
        generator = np.random.default_rng(123)
        children = spawn_seed_sequences(generator, 4)
        assert all(isinstance(c, np.random.SeedSequence) for c in children)
        assert [c.spawn_key for c in children] == [(0,), (1,), (2,), (3,)]
        assert all(c.entropy == 123 for c in children)

    def test_large_fanout_streams_are_unique(self):
        generator = np.random.default_rng(0)
        draws = [g.integers(0, 2**63) for g in spawn_rngs(generator, 500)]
        assert len(set(draws)) == 500


class TestSpawnSeedSequences:
    def test_reproducible_from_int(self):
        a = spawn_seed_sequences(9, 3)
        b = spawn_seed_sequences(9, 3)
        assert [c.spawn_key for c in a] == [c.spawn_key for c in b]
        assert [c.entropy for c in a] == [c.entropy for c in b]

    def test_matches_spawn_rngs_streams(self):
        from_seqs = [np.random.default_rng(s).integers(1_000_000) for s in spawn_seed_sequences(4, 3)]
        from_rngs = [g.integers(1_000_000) for g in spawn_rngs(4, 3)]
        assert from_seqs == from_rngs

    def test_seed_sequence_input_spawns_children(self):
        parent = np.random.SeedSequence(7)
        children = spawn_seed_sequences(parent, 2)
        assert [c.spawn_key for c in children] == [(0,), (1,)]

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_seed_sequences(0, -1)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            spawn_seed_sequences("nope", 2)


class TestRandomSubset:
    def test_probability_zero_gives_empty(self, rng):
        assert random_subset(rng, [1, 2, 3], 0.0) == []

    def test_probability_one_gives_all(self, rng):
        assert random_subset(rng, [1, 2, 3], 1.0) == [1, 2, 3]

    def test_invalid_probability_raises(self, rng):
        with pytest.raises(ValueError):
            random_subset(rng, [1, 2, 3], 1.5)

    def test_empty_items(self, rng):
        assert random_subset(rng, [], 0.5) == []

    def test_subset_of_items(self, rng):
        items = list(range(100))
        chosen = random_subset(rng, items, 0.3)
        assert set(chosen) <= set(items)
        assert 5 < len(chosen) < 60  # loose bounds around the mean 30


class TestSampleCategorical:
    def test_single_weight(self, rng):
        assert sample_categorical(rng, [1.0]) == 0

    def test_zero_weight_excluded(self, rng):
        draws = [sample_categorical(rng, [0.0, 1.0]) for _ in range(20)]
        assert all(d == 1 for d in draws)

    def test_negative_weight_raises(self, rng):
        with pytest.raises(ValueError):
            sample_categorical(rng, [0.5, -0.1])

    def test_all_zero_raises(self, rng):
        with pytest.raises(ValueError):
            sample_categorical(rng, [0.0, 0.0])

    def test_empty_raises(self, rng):
        with pytest.raises(ValueError):
            sample_categorical(rng, [])

    def test_size_parameter(self, rng):
        draws = sample_categorical(rng, [1.0, 2.0, 3.0], size=50)
        assert draws.shape == (50,)
        assert set(np.unique(draws)) <= {0, 1, 2}
