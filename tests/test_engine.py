"""Tests for the repro.engine subsystem (specs, engine, kernels)."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.core.flooding import flood, flooding_time_samples
from repro.engine import (
    Engine,
    TrialSpec,
    flood_sources_batch,
    flood_vectorized,
    has_fast_adjacency,
    resolve_backend,
)
from repro.meg.base import StaticGraphProcess
from repro.meg.edge_meg import EdgeMEG, four_state_edge_meg


def make_edge_meg(num_nodes: int) -> EdgeMEG:
    """Module-level factory (picklable, usable with workers > 1)."""
    return EdgeMEG(num_nodes, p=0.1, q=0.3)


class TestTrialSpec:
    def test_from_model_wraps_instance(self, small_edge_meg):
        spec = TrialSpec.from_model(small_edge_meg, num_trials=3, seed=0)
        assert spec.wraps_model
        assert spec.build_model() is small_edge_meg
        assert spec.label == "EdgeMEG"

    def test_factory_spec_builds_fresh_models(self):
        spec = TrialSpec(factory=make_edge_meg, args=(12,), num_trials=2)
        assert not spec.wraps_model
        assert spec.build_model() is not spec.build_model()
        assert spec.build_model().num_nodes == 12

    def test_invalid_num_trials(self, small_edge_meg):
        with pytest.raises(ValueError):
            TrialSpec.from_model(small_edge_meg, num_trials=0)

    def test_invalid_source(self, small_edge_meg):
        with pytest.raises(ValueError):
            TrialSpec.from_model(small_edge_meg, num_trials=1, source=-1)

    def test_invalid_max_steps(self, small_edge_meg):
        with pytest.raises(ValueError):
            TrialSpec.from_model(small_edge_meg, num_trials=1, max_steps=-5)

    def test_factory_must_be_callable(self):
        with pytest.raises(TypeError):
            TrialSpec(factory="not callable")

    def test_from_model_rejects_non_model(self):
        with pytest.raises(TypeError):
            TrialSpec.from_model("not a model", num_trials=1)

    def test_cache_token_sensitive_to_parameters(self):
        base = TrialSpec.from_model(EdgeMEG(20, p=0.1, q=0.3), num_trials=3)
        other_p = TrialSpec.from_model(EdgeMEG(20, p=0.2, q=0.3), num_trials=3)
        other_trials = TrialSpec.from_model(EdgeMEG(20, p=0.1, q=0.3), num_trials=4)
        assert base.cache_token() != other_p.cache_token()
        assert base.cache_token() != other_trials.cache_token()
        same = TrialSpec.from_model(EdgeMEG(20, p=0.1, q=0.3), num_trials=3)
        assert base.cache_token() == same.cache_token()


class TestEngineValidation:
    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            Engine(workers=0)

    def test_invalid_backend(self):
        with pytest.raises(ValueError):
            Engine(backend="gpu")

    def test_resolve_backend(self, small_edge_meg):
        small_edge_meg.reset(0)
        assert resolve_backend("auto", small_edge_meg) == "vectorized"
        static = StaticGraphProcess(nx.path_graph(4))
        assert resolve_backend("auto", static) == "set"
        assert resolve_backend("set", small_edge_meg) == "set"
        with pytest.raises(ValueError):
            resolve_backend("gpu", small_edge_meg)


class TestEngineDeterminism:
    def test_matches_flooding_time_samples(self, small_edge_meg):
        expected = flooding_time_samples(small_edge_meg, 6, rng=0)
        spec = TrialSpec.from_model(small_edge_meg, num_trials=6, seed=0)
        result = Engine(workers=1).run(spec)
        assert list(result.flooding_times) == expected
        assert result.num_nodes == small_edge_meg.num_nodes
        assert not result.from_cache

    def test_workers_1_vs_4_bit_identical(self, small_edge_meg):
        spec = TrialSpec.from_model(small_edge_meg, num_trials=8, seed=7)
        serial = Engine(workers=1).run(spec)
        parallel = Engine(workers=4).run(spec)
        assert serial.flooding_times == parallel.flooding_times

    def test_workers_with_factory_spec(self):
        spec = TrialSpec(factory=make_edge_meg, args=(20,), num_trials=6, seed=3)
        serial = Engine(workers=1).run(spec)
        parallel = Engine(workers=4).run(spec)
        assert serial.flooding_times == parallel.flooding_times

    def test_stochastic_factory_builds_once_at_any_worker_count(self):
        # The factory draws a random structure; the engine must build the
        # model once per run so serial and parallel trials share one
        # realization (and a lambda factory is fine — only the model ships).
        def random_static_graph(_unused=None):
            graph = nx.gnp_random_graph(18, 0.4, seed=np.random.default_rng())
            graph.add_edges_from(nx.path_graph(18).edges())  # keep connected
            return StaticGraphProcess(graph)

        spec = TrialSpec(factory=random_static_graph, num_trials=6, seed=0)
        serial = Engine(workers=1).run(spec)
        # A deterministic process: every trial of the batch must see the
        # same graph, so all samples within the run coincide.
        assert len(set(serial.flooding_times)) == 1
        parallel = Engine(workers=3).run(
            TrialSpec(factory=random_static_graph, num_trials=6, seed=0)
        )
        assert len(set(parallel.flooding_times)) == 1

    def test_set_and_vectorized_backends_agree(self, small_edge_meg):
        spec = TrialSpec.from_model(small_edge_meg, num_trials=6, seed=11)
        via_set = Engine(backend="set").run(spec)
        via_vec = Engine(backend="vectorized").run(spec)
        assert via_set.flooding_times == via_vec.flooding_times

    def test_seed_sequence_and_generator_seeds_accepted(self, small_edge_meg):
        seq = np.random.SeedSequence(5)
        spec = TrialSpec.from_model(small_edge_meg, num_trials=4, seed=seq)
        a = Engine().run(spec)
        b = Engine().run(
            TrialSpec.from_model(small_edge_meg, num_trials=4, seed=np.random.SeedSequence(5))
        )
        assert a.flooding_times == b.flooding_times

    def test_batch_result_metadata(self, small_edge_meg):
        spec = TrialSpec.from_model(small_edge_meg, num_trials=5, seed=0)
        result = Engine(workers=1, backend="auto").run(spec)
        assert result.num_trials == 5
        assert result.mean == pytest.approx(
            sum(result.flooding_times) / len(result.flooding_times)
        )
        assert result.elapsed_seconds >= 0.0
        payload = result.as_dict()
        assert payload["flooding_times"] == list(result.flooding_times)

    def test_run_many(self, small_edge_meg):
        specs = [
            TrialSpec.from_model(small_edge_meg, num_trials=2, seed=s) for s in (0, 1)
        ]
        results = Engine().run_many(specs)
        assert len(results) == 2


class TestVectorizedKernel:
    def test_matches_set_loop_exactly_on_edge_meg(self):
        model = EdgeMEG(30, p=0.1, q=0.3)
        for seed in range(5):
            assert flood(model, rng=seed) == flood_vectorized(model, rng=seed)

    def test_matches_set_loop_on_general_edge_meg(self):
        model = four_state_edge_meg(
            16, p_up=0.3, p_down=0.3, p_stabilize=0.2, p_destabilize=0.1
        )
        assert flood(model, rng=2) == flood_vectorized(model, rng=2)

    def test_generic_adjacency_path_on_static_graph(self):
        process = StaticGraphProcess(nx.path_graph(6))
        result = flood_vectorized(process, source=0)
        assert result.flooding_time == 5

    def test_single_node(self):
        graph = nx.Graph()
        graph.add_node(0)
        result = flood_vectorized(StaticGraphProcess(graph))
        assert result.flooding_time == 0

    def test_incomplete_run(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(4))
        graph.add_edge(0, 1)
        result = flood_vectorized(StaticGraphProcess(graph), max_steps=10)
        assert result.flooding_time is None
        assert result.final_informed == 2

    def test_invalid_source(self, small_edge_meg):
        with pytest.raises(ValueError):
            flood_vectorized(small_edge_meg, source=small_edge_meg.num_nodes)

    def test_has_fast_adjacency(self, small_edge_meg):
        assert has_fast_adjacency(small_edge_meg)
        assert not has_fast_adjacency(StaticGraphProcess(nx.path_graph(3)))

    def test_adjacency_matrix_override_matches_generic(self, small_edge_meg):
        small_edge_meg.reset(4)
        fast = small_edge_meg.adjacency_matrix()
        from repro.meg.base import DynamicGraph

        generic = DynamicGraph.adjacency_matrix(small_edge_meg)
        assert np.array_equal(fast, generic)
        assert np.array_equal(fast, fast.T)
        assert not fast.diagonal().any()


class TestFloodSourcesBatch:
    def test_path_graph_eccentricities(self):
        process = StaticGraphProcess(nx.path_graph(6))
        assert flood_sources_batch(process, [0, 2, 5]) == [5, 3, 5]

    def test_single_node(self):
        graph = nx.Graph()
        graph.add_node(0)
        assert flood_sources_batch(StaticGraphProcess(graph), [0, 0]) == [0, 0]

    def test_incomplete_sources_are_none(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(4))
        graph.add_edge(0, 1)
        times = flood_sources_batch(StaticGraphProcess(graph), [0, 1], max_steps=5)
        assert times == [None, None]

    def test_validation(self, small_edge_meg):
        with pytest.raises(ValueError):
            flood_sources_batch(small_edge_meg, [])
        with pytest.raises(ValueError):
            flood_sources_batch(small_edge_meg, [small_edge_meg.num_nodes])

    def test_matches_single_source_on_shared_realization(self):
        # With one source the batch kernel is just flood() in matrix form.
        model = EdgeMEG(25, p=0.1, q=0.3)
        single = flood(model, source=3, rng=9)
        batched = flood_sources_batch(model, [3], rng=9)
        assert batched == [single.flooding_time]

    def test_no_overflow_with_256_informed_neighbors(self):
        # Regression: a uint8 accumulator would wrap to 0 when a node has
        # exactly 256 informed neighbours and silently never inform it.
        # Layers: source 0 -> 256 middle nodes -> far node 257 whose only
        # neighbours are the 256 middle nodes (all informed simultaneously).
        graph = nx.Graph()
        graph.add_nodes_from(range(258))
        for middle in range(1, 257):
            graph.add_edge(0, middle)
            graph.add_edge(257, middle)
        times = flood_sources_batch(StaticGraphProcess(graph), [0])
        assert times == [2]


class TestSamplingHelpersThroughEngine:
    def test_workers_parameter(self, small_edge_meg):
        serial = flooding_time_samples(small_edge_meg, 6, rng=0, workers=1)
        parallel = flooding_time_samples(small_edge_meg, 6, rng=0, workers=4)
        assert serial == parallel

    def test_backend_parameter(self, small_edge_meg):
        via_set = flooding_time_samples(small_edge_meg, 6, rng=0, backend="set")
        via_vec = flooding_time_samples(small_edge_meg, 6, rng=0, backend="vectorized")
        assert via_set == via_vec

    def test_explicit_engine(self, small_edge_meg):
        engine = Engine(workers=1, backend="set")
        samples = flooding_time_samples(small_edge_meg, 4, rng=1, engine=engine)
        assert samples == flooding_time_samples(small_edge_meg, 4, rng=1)
