"""Tests for repro.markov.mixing."""

from __future__ import annotations

import math

import pytest

from repro.markov.builders import (
    complete_graph_walk,
    cycle_walk,
    two_state_chain,
    uniform_chain,
)
from repro.markov.chain import MarkovChain
from repro.markov.mixing import (
    empirical_mixing_time,
    epoch_length_for_accuracy,
    mixing_time,
    mixing_time_upper_bound_from_gap,
    relaxation_time,
    spectral_gap,
    tv_distance_from_stationarity,
)


class TestTvDistance:
    def test_zero_steps_from_point_mass(self):
        chain = two_state_chain(0.1, 0.4)
        d0 = tv_distance_from_stationarity(chain, 0)
        # Worst case at t=0 is 1 - min(pi) = 1 - 0.2 = 0.8.
        assert d0 == pytest.approx(0.8)

    def test_decreasing_in_steps(self):
        chain = two_state_chain(0.2, 0.3)
        distances = [tv_distance_from_stationarity(chain, t) for t in range(6)]
        assert all(a >= b - 1e-12 for a, b in zip(distances, distances[1:]))

    def test_uniform_chain_mixes_in_one_step(self):
        chain = uniform_chain(8)
        assert tv_distance_from_stationarity(chain, 1) == pytest.approx(0.0, abs=1e-12)

    def test_negative_steps_raise(self):
        with pytest.raises(ValueError):
            tv_distance_from_stationarity(uniform_chain(3), -1)


class TestMixingTime:
    def test_uniform_chain(self):
        assert mixing_time(uniform_chain(10)) == 1

    def test_two_state_known_scale(self):
        # Mixing time of the two-state chain is Theta(1 / (p + q)).
        fast = mixing_time(two_state_chain(0.4, 0.4))
        slow = mixing_time(two_state_chain(0.04, 0.04))
        assert slow > fast
        assert slow == pytest.approx(10 * fast, rel=0.6)

    def test_epsilon_monotone(self):
        chain = two_state_chain(0.05, 0.05)
        loose = mixing_time(chain, epsilon=0.4)
        tight = mixing_time(chain, epsilon=0.05)
        assert tight >= loose

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            mixing_time(uniform_chain(3), epsilon=0.0)

    def test_periodic_chain_raises(self):
        periodic = MarkovChain([[0.0, 1.0], [1.0, 0.0]])
        with pytest.raises(ValueError, match="did not mix"):
            mixing_time(periodic, max_steps=64)

    def test_already_stationary_returns_zero(self):
        # A one-state chain is already stationary.
        chain = MarkovChain([[1.0]])
        assert mixing_time(chain) == 0

    def test_cycle_walk_grows_with_length(self):
        small = mixing_time(cycle_walk(5))
        large = mixing_time(cycle_walk(15))
        assert large > small

    def test_complete_graph_walk_mixes_fast(self):
        assert mixing_time(complete_graph_walk(20)) <= 2


class TestSpectralGap:
    def test_uniform_chain_gap_is_one(self):
        assert spectral_gap(uniform_chain(6)) == pytest.approx(1.0)

    def test_gap_in_unit_interval(self):
        gap = spectral_gap(two_state_chain(0.3, 0.2))
        assert 0.0 < gap <= 1.0

    def test_two_state_closed_form(self):
        # Second eigenvalue of the two-state chain is 1 - p - q.
        gap = spectral_gap(two_state_chain(0.1, 0.2))
        assert gap == pytest.approx(0.3)

    def test_periodic_chain_zero_gap(self):
        periodic = MarkovChain([[0.0, 1.0], [1.0, 0.0]])
        assert spectral_gap(periodic) == pytest.approx(0.0)

    def test_relaxation_time_inverse(self):
        chain = two_state_chain(0.1, 0.2)
        assert relaxation_time(chain) == pytest.approx(1.0 / 0.3)

    def test_relaxation_time_infinite_for_periodic(self):
        periodic = MarkovChain([[0.0, 1.0], [1.0, 0.0]])
        assert math.isinf(relaxation_time(periodic))


class TestGapBound:
    def test_upper_bounds_actual_mixing_time(self):
        chain = two_state_chain(0.05, 0.1)
        actual = mixing_time(chain)
        bound = mixing_time_upper_bound_from_gap(chain)
        assert bound >= actual

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            mixing_time_upper_bound_from_gap(uniform_chain(3), epsilon=2.0)


class TestEpochLength:
    def test_matches_mixing_time_definition(self):
        chain = two_state_chain(0.1, 0.1)
        assert epoch_length_for_accuracy(chain, 0.25) == mixing_time(chain, 0.25)

    def test_smaller_accuracy_longer_epoch(self):
        chain = two_state_chain(0.1, 0.1)
        assert epoch_length_for_accuracy(chain, 0.01) >= epoch_length_for_accuracy(
            chain, 0.25
        )

    def test_invalid_accuracy(self):
        with pytest.raises(ValueError):
            epoch_length_for_accuracy(uniform_chain(3), 0.0)


class TestEmpiricalMixingTime:
    def test_at_most_worst_case(self):
        chain = two_state_chain(0.1, 0.3)
        worst = mixing_time(chain)
        for start in range(chain.num_states):
            assert empirical_mixing_time(chain, initial_state=start) <= worst

    def test_invalid_state(self):
        with pytest.raises(ValueError):
            empirical_mixing_time(uniform_chain(3), initial_state=5)

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            empirical_mixing_time(uniform_chain(3), epsilon=1.5)
