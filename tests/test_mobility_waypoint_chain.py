"""Tests for repro.mobility.waypoint_chain (the explicit Section-4.1 discretisation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.flooding import flooding_time
from repro.mobility.waypoint_chain import (
    WaypointChainModel,
    _cell_path,
    build_waypoint_chain,
    waypoint_chain_mixing_time,
)


@pytest.fixture(scope="module")
def chain_3x3():
    return build_waypoint_chain(3, side=3.0, radius=1.1)


@pytest.fixture(scope="module")
def chain_4x4():
    return build_waypoint_chain(4, side=4.0, radius=1.1)


class TestCellPath:
    def test_same_cell(self):
        assert _cell_path(0, 0, 4) == [0]

    def test_adjacent_cells(self):
        assert _cell_path(0, 1, 4) == [1]

    def test_path_ends_at_destination(self):
        for start in range(9):
            for destination in range(9):
                path = _cell_path(start, destination, 3)
                assert path[-1] == destination

    def test_path_does_not_start_with_start(self):
        path = _cell_path(0, 8, 3)
        assert path[0] != 0

    def test_path_length_bounded_by_grid_diameter(self):
        for start in range(16):
            for destination in range(16):
                path = _cell_path(start, destination, 4)
                assert len(path) <= 8  # at most ~2m cells on the straight segment


class TestBuildWaypointChain:
    def test_state_count(self, chain_3x3):
        assert chain_3x3.chain.num_states == 81  # (3^2)^2

    def test_rows_stochastic(self, chain_3x3):
        matrix = chain_3x3.chain.transition_matrix
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_chain_is_ergodic(self, chain_3x3):
        assert chain_3x3.chain.is_ergodic()

    def test_connection_symmetric(self, chain_3x3):
        connection = chain_3x3.connection
        assert np.array_equal(connection, connection.T)

    def test_connection_depends_only_on_current_cells(self, chain_4x4):
        # States with the same current cell but different destinations must
        # have identical connection rows.
        states = chain_4x4.chain.states
        by_current: dict[int, int] = {}
        for index, (current, _destination) in enumerate(states):
            if current in by_current:
                assert np.array_equal(
                    chain_4x4.connection[index], chain_4x4.connection[by_current[current]]
                )
            else:
                by_current[current] = index

    def test_invalid_resolution(self):
        with pytest.raises(ValueError):
            build_waypoint_chain(1, side=2.0, radius=1.0)
        with pytest.raises(ValueError):
            build_waypoint_chain(20, side=2.0, radius=1.0)

    def test_invalid_speed(self):
        with pytest.raises(ValueError):
            build_waypoint_chain(3, side=3.0, radius=1.0, cells_per_step=0)

    def test_cell_center(self, chain_3x3):
        assert chain_3x3.cell_center(0) == (0.5, 0.5)
        assert chain_3x3.cell_center(8) == (2.5, 2.5)
        with pytest.raises(ValueError):
            chain_3x3.cell_center(99)


class TestStationaryBehaviour:
    def test_positional_distribution_sums_to_one(self, chain_4x4):
        occupancy = chain_4x4.positional_distribution()
        assert occupancy.sum() == pytest.approx(1.0)

    def test_positional_bias_towards_centre(self, chain_4x4):
        # The discrete chain reproduces the waypoint's centre bias: interior
        # cells carry more stationary mass than corner cells.
        occupancy = chain_4x4.positional_distribution().reshape(4, 4)
        interior = occupancy[1:3, 1:3].mean()
        corners = np.mean([occupancy[0, 0], occupancy[0, 3], occupancy[3, 0], occupancy[3, 3]])
        assert interior > corners

    def test_mixing_time_finite_and_reasonable(self, chain_4x4):
        t_mix = waypoint_chain_mixing_time(chain_4x4)
        # Theta(L / v) with L = m cells and one cell per step: a handful of steps.
        assert 1 <= t_mix <= 12 * chain_4x4.resolution

    def test_mixing_time_grows_with_resolution(self, chain_3x3, chain_4x4):
        small = waypoint_chain_mixing_time(chain_3x3)
        large = waypoint_chain_mixing_time(chain_4x4)
        assert large >= small


class TestNodeMegRealisation:
    def test_to_node_meg_and_flood(self, chain_4x4):
        node_meg = chain_4x4.to_node_meg(30)
        assert node_meg.num_nodes == 30
        assert node_meg.edge_probability() > 0
        assert node_meg.eta() >= 1.0 - 1e-9
        assert flooding_time(node_meg, rng=0) >= 1

    def test_edge_probability_matches_cell_occupancy(self, chain_3x3):
        # P_NM equals the probability two independent stationary agents land
        # in cells within the radius, computable from the occupancy vector.
        node_meg = chain_3x3.to_node_meg(10)
        occupancy = chain_3x3.positional_distribution()
        spacing = chain_3x3.side / chain_3x3.resolution
        centers = np.array([chain_3x3.cell_center(c) for c in range(chain_3x3.num_cells)])
        distances = np.linalg.norm(centers[:, None, :] - centers[None, :, :], axis=2)
        connected = distances <= chain_3x3.radius + 1e-12
        expected = float(occupancy @ connected @ occupancy)
        assert node_meg.edge_probability() == pytest.approx(expected, rel=1e-6)

    def test_dataclass_fields(self, chain_3x3):
        assert isinstance(chain_3x3, WaypointChainModel)
        assert chain_3x3.num_cells == 9
        assert chain_3x3.cells_per_step == 1
