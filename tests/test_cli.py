"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


class TestExperimentsCommands:
    def test_list(self, capsys):
        assert main(["experiments", "list"]) == 0
        output = capsys.readouterr().out
        assert "E1:" in output
        assert "E10:" in output
        assert "Corollary" in output

    def test_run_single(self, capsys):
        assert main(["experiments", "run", "E7", "--scale", "small", "--seed", "3"]) == 0
        output = capsys.readouterr().out
        assert "E7:" in output
        assert "prior_bound_[10]" in output

    def test_run_single_markdown(self, capsys):
        assert main(["experiments", "run", "E1", "--markdown"]) == 0
        output = capsys.readouterr().out
        assert output.startswith("### E1:")
        assert "| n |" in output

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiments", "run", "E99"])


class TestFloodCommands:
    def test_edge_meg(self, capsys):
        code = main(
            ["flood", "edge-meg", "--nodes", "60", "--p", "0.03", "--q", "0.5", "--trials", "3"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "edge-MEG(n=60" in output
        assert "flooding time:" in output
        assert "paper bound" in output

    def test_waypoint(self, capsys):
        code = main(
            ["flood", "waypoint", "--nodes", "40", "--side", "6", "--radius", "1",
             "--speed", "1", "--trials", "2"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "random waypoint" in output

    def test_grid_walk(self, capsys):
        code = main(
            ["flood", "grid-walk", "--nodes", "30", "--grid-side", "4", "--augment-k", "2",
             "--trials", "2"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "grid random walk" in output

    def test_missing_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["flood"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_invalid_backend_rejected(self):
        with pytest.raises(SystemExit):
            main(["flood", "edge-meg", "--backend", "gpu"])


class TestEngineFlags:
    ARGS = ["flood", "edge-meg", "--nodes", "40", "--p", "0.05", "--q", "0.5",
            "--trials", "3", "--seed", "1"]

    def test_workers_and_backend_do_not_change_samples(self, tmp_path, capsys):
        runs = {}
        for name, extra in (
            ("serial-set", ["--workers", "1", "--backend", "set"]),
            ("parallel-vec", ["--workers", "2", "--backend", "vectorized"]),
        ):
            json_path = tmp_path / f"{name}.json"
            assert main(self.ARGS + extra + ["--json", str(json_path)]) == 0
            runs[name] = json.loads(json_path.read_text())["samples"]
        assert runs["serial-set"] == runs["parallel-vec"]

    def test_results_dir_caches_identical_reruns(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        assert main(self.ARGS + ["--results-dir", str(store_dir), "--json", str(first)]) == 0
        assert main(self.ARGS + ["--results-dir", str(store_dir), "--json", str(second)]) == 0
        assert json.loads(first.read_text()) == json.loads(second.read_text())
        # One entry in the store: the second run was a cache hit.
        store_file = store_dir / "results.jsonl"
        assert len(store_file.read_text().strip().splitlines()) == 1

    def test_json_output_shape(self, tmp_path, capsys):
        json_path = tmp_path / "run.json"
        assert main(self.ARGS + ["--json", str(json_path)]) == 0
        payload = json.loads(json_path.read_text())
        assert payload["engine"] == {"workers": 1, "backend": "auto"}
        assert len(payload["samples"]) == 3
        assert payload["summary"]["count"] == 3
        assert payload["paper_bound"] > 0

    def test_experiments_run_json(self, tmp_path, capsys):
        json_path = tmp_path / "e7.json"
        assert main(["experiments", "run", "E7", "--json", str(json_path)]) == 0
        payload = json.loads(json_path.read_text())
        assert payload["experiment_id"] == "E7"
        assert payload["columns"]
        assert len(payload["rows"]) >= 1


class TestVersion:
    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {repro.__version__}"

    def test_version_matches_semver_shape(self):
        import repro

        assert repro.__version__.count(".") == 2

    def test_version_agrees_with_pyproject(self):
        """Guards the source-checkout fallback in repro/__init__.py against

        drifting from pyproject.toml (which happened once before the
        fallback and the metadata were unified): whichever path supplied
        ``__version__`` — installed metadata or the literal — it must equal
        the version pyproject declares.
        """
        import os
        import re

        import repro

        pyproject = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "pyproject.toml",
        )
        with open(pyproject, encoding="utf-8") as handle:
            match = re.search(r'^version\s*=\s*"([^"]+)"', handle.read(), re.M)
        assert match, "pyproject.toml lost its version field"
        assert repro.__version__ == match.group(1)


class TestMergeResultsErrors:
    def test_missing_source_exits_cleanly(self, tmp_path, capsys):
        """A typo'd shard path is a clean exit-1 message, not a traceback."""
        code = main(
            ["merge-results", str(tmp_path / "merged.jsonl"), str(tmp_path / "nope")]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "merge failed:" in err
        assert "no result store" in err

    def test_conflicting_payloads_exit_cleanly(self, tmp_path, capsys):
        from repro.engine import ResultStore

        a = ResultStore(str(tmp_path / "a"))
        b = ResultStore(str(tmp_path / "b"))
        a.put("k", {"value": 1})
        b.put("k", {"value": 2})
        code = main(
            ["merge-results", str(tmp_path / "merged.jsonl"),
             str(tmp_path / "a"), str(tmp_path / "b")]
        )
        assert code == 1
        assert "merge failed:" in capsys.readouterr().err


class TestRunAll:
    def test_run_all_to_file(self, tmp_path, capsys):
        output_file = tmp_path / "report.md"
        code = main(
            ["experiments", "run-all", "--markdown", "--output", str(output_file)]
        )
        assert code == 0
        content = output_file.read_text()
        # Every experiment section is present.
        for experiment_id in (f"E{i}" for i in range(1, 11)):
            assert f"### {experiment_id}:" in content
        assert "wrote" in capsys.readouterr().out
