"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestExperimentsCommands:
    def test_list(self, capsys):
        assert main(["experiments", "list"]) == 0
        output = capsys.readouterr().out
        assert "E1:" in output
        assert "E10:" in output
        assert "Corollary" in output

    def test_run_single(self, capsys):
        assert main(["experiments", "run", "E7", "--scale", "small", "--seed", "3"]) == 0
        output = capsys.readouterr().out
        assert "E7:" in output
        assert "prior_bound_[10]" in output

    def test_run_single_markdown(self, capsys):
        assert main(["experiments", "run", "E1", "--markdown"]) == 0
        output = capsys.readouterr().out
        assert output.startswith("### E1:")
        assert "| n |" in output

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiments", "run", "E99"])


class TestFloodCommands:
    def test_edge_meg(self, capsys):
        code = main(
            ["flood", "edge-meg", "--nodes", "60", "--p", "0.03", "--q", "0.5", "--trials", "3"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "edge-MEG(n=60" in output
        assert "flooding time:" in output
        assert "paper bound" in output

    def test_waypoint(self, capsys):
        code = main(
            ["flood", "waypoint", "--nodes", "40", "--side", "6", "--radius", "1",
             "--speed", "1", "--trials", "2"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "random waypoint" in output

    def test_grid_walk(self, capsys):
        code = main(
            ["flood", "grid-walk", "--nodes", "30", "--grid-side", "4", "--augment-k", "2",
             "--trials", "2"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "grid random walk" in output

    def test_missing_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["flood"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestRunAll:
    def test_run_all_to_file(self, tmp_path, capsys):
        output_file = tmp_path / "report.md"
        code = main(
            ["experiments", "run-all", "--markdown", "--output", str(output_file)]
        )
        assert code == 0
        content = output_file.read_text()
        # Every experiment section is present.
        for experiment_id in (f"E{i}" for i in range(1, 11)):
            assert f"### {experiment_id}:" in content
        assert "wrote" in capsys.readouterr().out
