"""Tests for repro.meg.erdos_renyi, repro.meg.adversarial and repro.meg.snapshots."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.meg.adversarial import ExplicitScheduleGraph, RotatingSpanningTreeGraph
from repro.meg.edge_meg import EdgeMEG
from repro.meg.erdos_renyi import ErdosRenyiSequence
from repro.meg.snapshots import empirical_edge_probability, snapshot_statistics


class TestErdosRenyiSequence:
    def test_density(self):
        model = ErdosRenyiSequence(30, p=0.3)
        model.reset(0)
        counts = [model.edge_count()]
        for _ in range(100):
            model.step()
            counts.append(model.edge_count())
        assert np.mean(counts) / (30 * 29 / 2) == pytest.approx(0.3, abs=0.05)

    def test_snapshots_independent(self):
        model = ErdosRenyiSequence(20, p=0.5)
        model.reset(1)
        first = set(model.current_edges())
        model.step()
        second = set(model.current_edges())
        assert first != second

    def test_p_zero_always_empty(self):
        model = ErdosRenyiSequence(10, p=0.0)
        model.reset(0)
        model.run(5)
        assert model.edge_count() == 0

    def test_p_one_always_complete(self):
        model = ErdosRenyiSequence(10, p=1.0)
        model.reset(0)
        model.run(3)
        assert model.edge_count() == 45

    def test_stationary_edge_probability(self):
        assert ErdosRenyiSequence(10, p=0.25).stationary_edge_probability() == 0.25

    def test_step_before_reset_raises(self):
        model = ErdosRenyiSequence(5, p=0.5)
        with pytest.raises(RuntimeError):
            model.step()

    def test_neighbors_of_set(self):
        model = ErdosRenyiSequence(15, p=0.4)
        model.reset(3)
        informed = {2, 9}
        fast = model.neighbors_of_set(informed)
        slow = set()
        for i, j in model.current_edges():
            if i in informed:
                slow.add(j)
            if j in informed:
                slow.add(i)
        assert fast == slow


class TestExplicitScheduleGraph:
    def _snapshots(self):
        a = nx.Graph()
        a.add_nodes_from(range(4))
        a.add_edges_from([(0, 1), (2, 3)])
        b = nx.Graph()
        b.add_nodes_from(range(4))
        b.add_edges_from([(1, 2)])
        return [a, b]

    def test_replays_schedule(self):
        model = ExplicitScheduleGraph(self._snapshots())
        model.reset()
        assert set(model.current_edges()) == {(0, 1), (2, 3)}
        model.step()
        assert set(model.current_edges()) == {(1, 2)}

    def test_cycles_by_default(self):
        model = ExplicitScheduleGraph(self._snapshots())
        model.reset()
        model.run(2)
        assert set(model.current_edges()) == {(0, 1), (2, 3)}

    def test_no_cycle_freezes_last(self):
        model = ExplicitScheduleGraph(self._snapshots(), cycle=False)
        model.reset()
        model.run(10)
        assert set(model.current_edges()) == {(1, 2)}

    def test_requires_snapshot(self):
        with pytest.raises(ValueError):
            ExplicitScheduleGraph([])

    def test_requires_consistent_labels(self):
        good = nx.path_graph(4)
        bad = nx.Graph()
        bad.add_edge(10, 11)
        with pytest.raises(ValueError):
            ExplicitScheduleGraph([good, bad])

    def test_reset_restarts_schedule(self):
        model = ExplicitScheduleGraph(self._snapshots())
        model.reset()
        model.run(3)
        model.reset()
        assert set(model.current_edges()) == {(0, 1), (2, 3)}


class TestRotatingSpanningTree:
    def test_star_centre_rotates(self):
        model = RotatingSpanningTreeGraph(5)
        model.reset()
        assert set(model.current_edges()) == {(0, 1), (0, 2), (0, 3), (0, 4)}
        model.step()
        assert (1, 2) in set(model.current_edges())

    def test_every_snapshot_connected(self):
        model = RotatingSpanningTreeGraph(6)
        model.reset()
        for _ in range(10):
            assert nx.is_connected(model.snapshot())
            model.step()

    def test_neighbors_of_set_with_centre(self):
        model = RotatingSpanningTreeGraph(5)
        model.reset()
        assert model.neighbors_of_set({0}) == {1, 2, 3, 4}
        assert model.neighbors_of_set({3}) == {0}

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            RotatingSpanningTreeGraph(1)


class TestSnapshotStatistics:
    def test_dense_process_connected(self):
        model = ErdosRenyiSequence(20, p=0.5)
        stats = snapshot_statistics(model, num_snapshots=20, rng=0)
        assert stats.num_nodes == 20
        assert stats.connected_fraction > 0.9
        assert stats.mean_isolated_fraction < 0.05
        assert stats.empirical_edge_probability == pytest.approx(0.5, abs=0.1)

    def test_sparse_process_disconnected(self):
        model = EdgeMEG(60, p=0.25 / 60, q=0.5)
        stats = snapshot_statistics(model, num_snapshots=30, rng=1)
        # The paper's point: sparse snapshots have many isolated nodes.
        assert stats.mean_isolated_fraction > 0.3
        assert stats.connected_fraction == 0.0

    def test_mean_degree_consistency(self):
        model = ErdosRenyiSequence(15, p=0.4)
        stats = snapshot_statistics(model, num_snapshots=25, rng=2)
        assert stats.mean_degree == pytest.approx(2 * stats.mean_edges / 15)

    def test_as_dict_keys(self):
        model = ErdosRenyiSequence(10, p=0.2)
        stats = snapshot_statistics(model, num_snapshots=5, rng=0)
        assert "mean_edges" in stats.as_dict()

    def test_invalid_arguments(self):
        model = ErdosRenyiSequence(10, p=0.2)
        with pytest.raises(ValueError):
            snapshot_statistics(model, num_snapshots=0)
        with pytest.raises(ValueError):
            snapshot_statistics(model, num_snapshots=5, burn_in=-1)

    def test_empirical_edge_probability_matches_stationary(self):
        model = EdgeMEG(12, p=0.3, q=0.3)
        estimate = empirical_edge_probability(
            model, edge=(0, 1), num_snapshots=400, rng=3, spacing=4
        )
        assert estimate == pytest.approx(0.5, abs=0.08)

    def test_empirical_edge_probability_invalid(self):
        model = EdgeMEG(12, p=0.3, q=0.3)
        with pytest.raises(ValueError):
            empirical_edge_probability(model, edge=(0, 1), num_snapshots=0)
        with pytest.raises(ValueError):
            empirical_edge_probability(model, edge=(0, 1), num_snapshots=5, spacing=0)
