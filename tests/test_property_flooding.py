"""Property-based tests (hypothesis) for flooding and the bound formulas."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import theorem1_bound, theorem3_bound
from repro.core.flooding import flood
from repro.core.spreading import gossip_spread
from repro.meg.edge_meg import EdgeMEG
from repro.meg.erdos_renyi import ErdosRenyiSequence
from repro.util.stats import summarize


class TestFloodingInvariants:
    @given(
        n=st.integers(min_value=2, max_value=40),
        p=st.floats(min_value=0.05, max_value=0.9),
        q=st.floats(min_value=0.05, max_value=0.9),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_informed_set_monotone_and_bounded(self, n, p, q, seed):
        model = EdgeMEG(n, p=p, q=q)
        result = flood(model, rng=seed, max_steps=200)
        history = result.informed_history
        assert history[0] == 1
        assert all(a <= b for a, b in zip(history, history[1:]))
        assert all(1 <= count <= n for count in history)

    @given(
        n=st.integers(min_value=2, max_value=30),
        seed=st.integers(min_value=0, max_value=10_000),
        source=st.integers(min_value=0, max_value=29),
    )
    @settings(max_examples=40, deadline=None)
    def test_source_choice_never_breaks_flooding(self, n, seed, source):
        model = ErdosRenyiSequence(n, p=0.5)
        result = flood(model, source=source % n, rng=seed, max_steps=400)
        assert result.completed
        assert result.flooding_time >= 1 or n == 1

    @given(
        n=st.integers(min_value=3, max_value=30),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_complete_snapshots_flood_in_exactly_one_step(self, n, seed):
        model = ErdosRenyiSequence(n, p=1.0)
        result = flood(model, rng=seed)
        assert result.flooding_time == 1

    @given(
        n=st.integers(min_value=4, max_value=30),
        probability=st.floats(min_value=0.3, max_value=1.0),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_gossip_never_beats_flooding_per_realisation_bound(self, n, probability, seed):
        # Gossip informs a subset of what flooding would inform, so the
        # completion time is at least 1 and the history is monotone.
        model = ErdosRenyiSequence(n, p=0.6)
        result = gossip_spread(
            model, transmission_probability=probability, rng=seed, max_steps=500
        )
        history = result.informed_history
        assert all(a <= b for a, b in zip(history, history[1:]))
        if result.completed:
            assert result.completion_time >= 1


class TestBoundFormulaProperties:
    @given(
        n=st.integers(min_value=2, max_value=10_000),
        epoch=st.floats(min_value=0.5, max_value=1000),
        alpha=st.floats(min_value=1e-6, max_value=1.0),
        beta=st.floats(min_value=1.0, max_value=100.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_theorem1_positive(self, n, epoch, alpha, beta):
        assert theorem1_bound(n, epoch, alpha, beta) > 0

    @given(
        n=st.integers(min_value=2, max_value=10_000),
        epoch=st.floats(min_value=0.5, max_value=1000),
        alpha_low=st.floats(min_value=1e-6, max_value=0.5),
        alpha_high=st.floats(min_value=0.5, max_value=1.0),
        beta=st.floats(min_value=1.0, max_value=100.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_theorem1_antitone_in_alpha(self, n, epoch, alpha_low, alpha_high, beta):
        assert theorem1_bound(n, epoch, alpha_low, beta) >= theorem1_bound(
            n, epoch, alpha_high, beta
        )

    @given(
        n=st.integers(min_value=2, max_value=10_000),
        t_mix=st.floats(min_value=0.5, max_value=1000),
        p_nm=st.floats(min_value=1e-6, max_value=1.0),
        eta=st.floats(min_value=1.0, max_value=50.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_theorem3_dominates_theorem1_shape(self, n, t_mix, p_nm, eta):
        # Theorem 3 = Theorem 1 with an extra log factor (same alpha/beta roles).
        assert theorem3_bound(n, t_mix, p_nm, eta) >= theorem1_bound(n, t_mix, p_nm, eta)


class TestSummaryProperties:
    @given(
        samples=st.lists(
            st.integers(min_value=1, max_value=10_000), min_size=1, max_size=60
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_summary_orderings(self, samples):
        summary = summarize(samples)
        assert summary.minimum <= summary.median <= summary.maximum
        assert summary.minimum <= summary.mean <= summary.maximum
        assert summary.q90 <= summary.q99 + 1e-9
