"""Tests for spool inspection: status snapshots, throughput metrics, JSON.

``repro fleet status`` is the operator's only window into a running fleet,
so its data layer must stay truthful on the awkward spools — empty ones,
spools whose every job failed, leases that never heartbeat — and the
throughput metrics (jobs/s, requeue rate, heartbeat-age distribution) must
come out of the terminal records exactly.
"""

from __future__ import annotations

import json
import os
import time

from repro.fleet import (
    JobSpool,
    SpoolMetrics,
    format_status,
    spool_metrics,
    spool_status,
    status_as_dict,
)


def _payload(job_id: str) -> dict:
    return {"id": job_id, "kind": "sweep", "store": f"stores/{job_id}"}


def _stamp_done(spool: JobSpool, job_id: str, completed_at: float, attempts: int = 0) -> None:
    """Rewrite a done descriptor's completion stamp (and attempt count)."""
    path = os.path.join(spool.root, "done", f"{job_id}.json")
    with open(path, encoding="utf-8") as handle:
        descriptor = json.load(handle)
    descriptor["completed_at"] = completed_at
    descriptor["attempts"] = attempts
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(descriptor, handle)


class TestSpoolStatus:
    def test_empty_spool(self, tmp_path):
        spool = JobSpool(tmp_path / "spool")
        status = spool_status(spool)
        assert status.total == 0
        assert status.drained  # vacuously: nothing pending, nothing active
        assert status.pending == status.done == ()
        rendered = format_status(status)
        assert "0 pending" in rendered
        # No "all jobs completed" cheer for a spool that never held a job.
        assert "all jobs completed" not in rendered

    def test_lifecycle_counts(self, tmp_path):
        spool = JobSpool(tmp_path / "spool", max_attempts=1)
        for job_id in ("a", "b", "c", "d"):
            spool.enqueue(_payload(job_id))
        spool.claim("w-1")  # a -> active
        spool.claim("w-2")  # b -> active
        spool.mark_done("a", {"trials": 3})
        spool.mark_failed("b", "boom")  # budget 1 -> failed
        status = spool_status(spool)
        assert len(status.pending) == 2
        assert len(status.active) == 0
        assert status.done == ("a",)
        assert [job.job_id for job in status.failed] == ["b"]
        assert status.total == 4
        assert not status.drained

    def test_failed_job_rendering(self, tmp_path):
        spool = JobSpool(tmp_path / "spool", max_attempts=1)
        spool.enqueue(_payload("job-a"))
        spool.claim("w")
        spool.mark_failed("job-a", "ValueError: bad shard")
        status = spool_status(spool)
        assert status.failed[0].attempts == 1
        assert "bad shard" in status.failed[0].error
        rendered = format_status(status)
        assert "failed job-a" in rendered
        assert "ValueError: bad shard" in rendered
        assert "all jobs completed" not in rendered

    def test_active_lease_with_and_without_heartbeat(self, tmp_path):
        spool = JobSpool(tmp_path / "spool")
        spool.enqueue(_payload("job-a"))
        spool.claim("worker-9")
        status = spool_status(spool)
        lease = status.active[0]
        assert lease.worker == "worker-9"
        assert lease.heartbeat_age_seconds is not None
        assert lease.heartbeat_age_seconds < 5.0
        # A meta file without heartbeat_at (older writer) renders as "never".
        meta_path = os.path.join(spool.root, "active", "job-a.meta.json")
        with open(meta_path, "w", encoding="utf-8") as handle:
            json.dump({"worker": "worker-9"}, handle)
        status = spool_status(spool)
        assert status.active[0].heartbeat_age_seconds is None
        assert status.active[0].lease_age_seconds == 0.0
        assert "heartbeat never" in format_status(status)

    def test_future_heartbeat_clamps_to_zero_age(self, tmp_path):
        # Clock skew must not produce a negative heartbeat age in status.
        spool = JobSpool(tmp_path / "spool")
        spool.enqueue(_payload("job-a"))
        spool.claim("w")
        meta_path = os.path.join(spool.root, "active", "job-a.meta.json")
        future = time.time() + 3600.0
        with open(meta_path, "w", encoding="utf-8") as handle:
            json.dump({"worker": "w", "claimed_at": future, "heartbeat_at": future}, handle)
        status = spool_status(spool)
        assert status.active[0].heartbeat_age_seconds == 0.0
        assert status.active[0].lease_age_seconds == 0.0


class TestSpoolMetrics:
    def test_empty_spool_metrics(self, tmp_path):
        spool = JobSpool(tmp_path / "spool")
        metrics = spool_metrics(spool)
        assert metrics == SpoolMetrics(
            jobs_per_second=None,
            requeues=0,
            requeue_rate=None,
            heartbeat_age_seconds=None,
        )

    def test_single_done_job_has_no_rate(self, tmp_path):
        spool = JobSpool(tmp_path / "spool")
        spool.enqueue(_payload("a"))
        spool.claim("w")
        spool.mark_done("a")
        metrics = spool_metrics(spool)
        assert metrics.jobs_per_second is None  # one stamp spans no time
        assert metrics.requeues == 0
        assert metrics.requeue_rate == 0.0

    def test_jobs_per_second_from_completion_stamps(self, tmp_path):
        spool = JobSpool(tmp_path / "spool")
        for job_id in ("a", "b", "c"):
            spool.enqueue(_payload(job_id))
            spool.claim("w")
            spool.mark_done(job_id)
        base = time.time()
        for index, job_id in enumerate(("a", "b", "c")):
            _stamp_done(spool, job_id, base + 2.0 * index)
        metrics = spool_metrics(spool)
        # 3 completions over 4 seconds: 2 inter-completion gaps / 4s.
        assert metrics.jobs_per_second is not None
        assert abs(metrics.jobs_per_second - 0.5) < 1e-9

    def test_requeue_accounting(self, tmp_path):
        # A done job's attempts counts its failed tries; a failed job spent
        # its whole budget, of which all but the first run were requeues.
        spool = JobSpool(tmp_path / "spool", max_attempts=2)
        spool.enqueue(_payload("retried"))
        spool.claim("w")
        spool.mark_failed("retried", "first try died")  # requeued, attempts=1
        spool.claim("w")
        spool.mark_done("retried")
        spool.enqueue(_payload("doomed"))
        spool.claim("w")
        spool.mark_failed("doomed", "one")
        spool.claim("w")
        spool.mark_failed("doomed", "two")  # budget exhausted -> failed/
        metrics = spool_metrics(spool)
        assert metrics.requeues == 2  # one for "retried", one for "doomed"
        assert metrics.requeue_rate == 1.0  # 2 requeues over 2 terminal jobs

    def test_heartbeat_age_distribution(self, tmp_path):
        spool = JobSpool(tmp_path / "spool")
        now = time.time()
        for job_id, age in (("a", 2.0), ("b", 6.0)):
            spool.enqueue(_payload(job_id))
            spool.claim(f"w-{job_id}")
            meta_path = os.path.join(spool.root, "active", f"{job_id}.meta.json")
            with open(meta_path, "w", encoding="utf-8") as handle:
                json.dump(
                    {"worker": f"w-{job_id}", "claimed_at": now - age,
                     "heartbeat_at": now - age},
                    handle,
                )
        status = spool_status(spool, now=now)
        metrics = spool_metrics(spool, status)
        ages = metrics.heartbeat_age_seconds
        assert ages is not None
        assert abs(ages["min"] - 2.0) < 0.5
        assert abs(ages["max"] - 6.0) < 0.5
        assert abs(ages["mean"] - 4.0) < 0.5
        rendered = format_status(status, metrics)
        assert "rates:" in rendered
        assert "heartbeat age" in rendered


class TestStatusAsDict:
    def test_round_trips_through_json(self, tmp_path):
        spool = JobSpool(tmp_path / "spool", max_attempts=1)
        spool.enqueue(_payload("a"))
        spool.enqueue(_payload("b"))
        spool.claim("w")
        spool.mark_failed("a", "boom")
        status = spool_status(spool)
        payload = status_as_dict(status, spool_metrics(spool, status))
        # Already round-tripped internally; a second trip is stable.
        assert json.loads(json.dumps(payload)) == payload
        assert payload["counts"] == {
            "total": 2, "pending": 1, "active": 0, "done": 0, "failed": 1,
        }
        assert payload["failed"] == [{"job_id": "a", "attempts": 1, "error": "boom"}]
        assert payload["metrics"]["requeues"] == 0
        assert payload["metrics"]["jobs_per_second"] is None
        assert payload["drained"] is False

    def test_metrics_key_is_optional(self, tmp_path):
        spool = JobSpool(tmp_path / "spool")
        payload = status_as_dict(spool_status(spool))
        assert "metrics" not in payload
