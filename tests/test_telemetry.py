"""Tests for repro.telemetry: tracer, metrics, logging, report, invisibility.

Two contracts matter most:

* **disabled means invisible** — with no active telemetry the module-level
  primitives are no-ops, and *enabling* telemetry must not change a single
  computed byte (RNG streams and result stores untouched): sweep and
  experiment stores written with telemetry on are ``cmp``-identical to
  stores written with it off;
* **the data is truthful** — spans nest, metrics aggregate across process
  boundaries, the report merge survives crashed writers, and the CLI
  surfaces (``--telemetry``, ``repro telemetry report``,
  ``repro fleet status --json``) expose it all.
"""

from __future__ import annotations

import json
import logging
import os

import pytest

from repro.cli import main
from repro.engine import Engine, ResultStore, TrialSpec
from repro.fleet import JobSpool, run_worker, sweep_job_payloads
from repro.meg.edge_meg import EdgeMEG
from repro.telemetry import core as telemetry
from repro.telemetry.log import (
    LOG_LEVEL_ENV,
    _CurrentStdoutHandler,
    configure,
    get_logger,
    resolve_level,
)
from repro.telemetry.report import (
    format_report,
    load_events,
    summarize_events,
    telemetry_report,
)


@pytest.fixture(autouse=True)
def _no_leaked_telemetry():
    """Every test starts and ends with telemetry disabled."""
    telemetry.disable()
    yield
    telemetry.disable()


def _events(path):
    with open(path, encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


def _spec(trials: int = 4, seed: int = 5) -> TrialSpec:
    model = EdgeMEG(24, p=0.1, q=0.5)
    return TrialSpec.from_model(model, num_trials=trials, seed=seed)


class TestCorePrimitives:
    def test_disabled_primitives_are_noops(self):
        assert telemetry.active() is None
        telemetry.count("x")
        telemetry.gauge("x", 1.0)
        telemetry.timing("x", 1.0)
        telemetry.event("x", detail="dropped")
        span = telemetry.span("x")
        with span as inner:
            assert inner.add(outcome="ignored") is inner
        # One shared null span, not an allocation per call.
        assert telemetry.span("y") is span

    def test_span_records_duration_parent_and_fields(self, tmp_path):
        instance = telemetry.Telemetry(str(tmp_path), process="p1")
        with instance.span("outer", label="sweep") as outer:
            with instance.span("inner") as inner:
                pass
        instance.close()
        records = _events(instance.path)
        spans = {record["name"]: record for record in records if record["kind"] == "span"}
        assert spans["inner"]["parent_id"] == outer.span_id
        assert spans["outer"]["parent_id"] is None
        assert spans["outer"]["label"] == "sweep"
        assert spans["inner"]["span_id"] == inner.span_id
        assert spans["inner"]["duration_seconds"] >= 0.0
        for record in records:
            assert record["process"] == "p1"
            assert record["ts"] > 0

    def test_span_records_exception_type(self, tmp_path):
        instance = telemetry.Telemetry(str(tmp_path), process="p1")
        with pytest.raises(ValueError):
            with instance.span("doomed"):
                raise ValueError("boom")
        instance.close()
        (record,) = [r for r in _events(instance.path) if r["kind"] == "span"]
        assert record["error"] == "ValueError"

    def test_metrics_accumulate_and_flush_once(self, tmp_path):
        instance = telemetry.Telemetry(str(tmp_path), process="p1")
        instance.count("jobs")
        instance.count("jobs", 2)
        instance.gauge("util", 0.25)
        instance.gauge("util", 0.75)
        for value in (1.0, 3.0, 2.0):
            instance.timing("step", value)
        instance.close()
        instance.close()  # idempotent
        metrics = [r for r in _events(instance.path) if r["kind"] == "metrics"]
        assert len(metrics) == 1
        assert metrics[0]["counters"] == {"jobs": 3}
        assert metrics[0]["gauges"] == {"util": 0.75}
        timing = metrics[0]["timings"]["step"]
        assert timing["count"] == 3
        assert timing["min"] == 1.0
        assert timing["max"] == 3.0
        assert timing["mean"] == pytest.approx(2.0)

    def test_in_memory_instance_drops_events_but_keeps_metrics(self):
        instance = telemetry.Telemetry(directory=None, process="child")
        assert instance.path is None
        instance.event("dropped")
        with instance.span("also-dropped"):
            instance.count("kernel", 4)
        snapshot = instance.metrics_snapshot()
        assert snapshot["counters"] == {"kernel": 4}
        instance.close()

    def test_merge_metrics_folds_child_snapshots(self):
        parent = telemetry.Telemetry(directory=None, process="parent")
        child = telemetry.Telemetry(directory=None, process="child")
        parent.count("trials", 2)
        parent.timing("chunk", 1.0)
        child.count("trials", 3)
        child.timing("chunk", 5.0)
        child.gauge("depth", 7.0)
        parent.merge_metrics(child.metrics_snapshot())
        parent.merge_metrics(None)  # tolerated
        merged = parent.metrics_snapshot()
        assert merged["counters"] == {"trials": 5}
        assert merged["gauges"] == {"depth": 7.0}
        assert merged["timings"]["chunk"]["count"] == 2
        assert merged["timings"]["chunk"]["max"] == 5.0

    def test_enable_disable_lifecycle(self, tmp_path):
        first = telemetry.enable(str(tmp_path), process="one")
        assert telemetry.active() is first
        second = telemetry.enable(str(tmp_path), process="two")
        assert telemetry.active() is second
        telemetry.disable()
        assert telemetry.active() is None
        telemetry.disable()  # idempotent

    def test_deactivate_only_clears_matching_instance(self):
        first = telemetry.activate(telemetry.Telemetry(process="one"))
        telemetry.deactivate(telemetry.Telemetry(process="other"))
        assert telemetry.active() is first
        telemetry.deactivate(first)
        assert telemetry.active() is None

    def test_default_process_id_embeds_pid(self):
        assert str(os.getpid()) in telemetry.default_process_id()
        instance = telemetry.Telemetry()
        assert instance.pid == os.getpid()


class TestInvisibility:
    """Enabling telemetry must not change any computed result."""

    def test_engine_samples_identical_with_telemetry_on(self, tmp_path):
        baseline = Engine(workers=2).run(_spec()).flooding_times
        telemetry.enable(str(tmp_path / "tel"))
        try:
            observed = Engine(workers=2).run(_spec()).flooding_times
        finally:
            telemetry.disable()
        assert observed == baseline

    def test_sweep_store_bytes_identical_with_telemetry_on(self, tmp_path):
        argv = ["sweep", "edge-meg", "--nodes", "16,24", "--trials", "3", "--seed", "7"]
        assert main(argv + ["--results-dir", str(tmp_path / "off")]) == 0
        assert main(
            argv
            + ["--results-dir", str(tmp_path / "on"),
               "--telemetry", str(tmp_path / "tel")]
        ) == 0
        off = (tmp_path / "off" / "results.jsonl").read_bytes()
        on = (tmp_path / "on" / "results.jsonl").read_bytes()
        assert on == off
        assert telemetry.active() is None  # main() disabled it again
        assert list((tmp_path / "tel").glob("events-*.jsonl"))

    def test_experiment_store_and_report_identical_with_telemetry_on(self, tmp_path):
        argv = ["experiment", "E7", "--scale", "small", "--seed", "3"]
        assert main(
            argv + ["--results-dir", str(tmp_path / "off"),
                    "--json", str(tmp_path / "off.json")]
        ) == 0
        assert main(
            argv + ["--results-dir", str(tmp_path / "on"),
                    "--json", str(tmp_path / "on.json"),
                    "--telemetry", str(tmp_path / "tel")]
        ) == 0
        assert (
            (tmp_path / "on" / "results.jsonl").read_bytes()
            == (tmp_path / "off" / "results.jsonl").read_bytes()
        )
        assert (tmp_path / "on.json").read_bytes() == (tmp_path / "off.json").read_bytes()

    def test_telemetry_env_fallback_enables(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_TELEMETRY", str(tmp_path / "tel"))
        argv = ["sweep", "edge-meg", "--nodes", "16", "--trials", "2", "--seed", "1",
                "--results-dir", str(tmp_path / "store")]
        assert main(argv) == 0
        assert list((tmp_path / "tel").glob("events-*.jsonl"))


class TestEngineInstrumentation:
    def test_run_span_counters_and_cache_metrics(self, tmp_path):
        instance = telemetry.enable(str(tmp_path / "tel"), process="eng")
        try:
            engine = Engine(workers=2, store=ResultStore(str(tmp_path / "store")))
            assert not engine.run(_spec()).from_cache
            assert engine.run(_spec()).from_cache
            snapshot = instance.metrics_snapshot()
        finally:
            telemetry.disable()
        counters = snapshot["counters"]
        assert counters["engine.store.miss"] == 1
        assert counters["engine.store.hit"] == 1
        assert counters["engine.store.put"] == 1
        assert counters["engine.chunks"] >= 1
        assert counters["engine.executor.process"] == 1
        assert sum(
            value for name, value in counters.items()
            if name.startswith("engine.backend.")
        ) == _spec().num_trials  # only the uncached run dispatched kernels
        assert "engine.chunk.execute_seconds" in snapshot["timings"]
        spans = [r for r in _events(instance.path) if r["kind"] == "span"]
        cached_flags = sorted(r["cached"] for r in spans if r["name"] == "engine.run")
        assert cached_flags == [False, True]

    def test_pool_children_ship_kernel_metrics(self, tmp_path):
        trials = 6
        spec = _spec(trials=trials)
        for executor in ("process", "thread"):
            instance = telemetry.enable(str(tmp_path / executor), process=executor)
            try:
                Engine(workers=2, executor=executor).run(spec)
                counters = instance.metrics_snapshot()["counters"]
                timings = instance.metrics_snapshot()["timings"]
            finally:
                telemetry.disable()
            # Kernel dispatch happened in pool children; every trial's count
            # must still reach the parent registry.
            backend_total = sum(
                value for name, value in counters.items()
                if name.startswith("engine.backend.")
            )
            assert backend_total == trials, executor
            assert counters["engine.chunks"] == 2
            assert "kernel.rounds" in timings, executor
            assert "engine.chunk.queue_wait_seconds" in timings

    def test_kernel_flood_counters(self, tmp_path):
        instance = telemetry.enable(str(tmp_path), process="kern")
        try:
            Engine(backend="vectorized").run(_spec(trials=3))
            counters = instance.metrics_snapshot()["counters"]
            timings = instance.metrics_snapshot()["timings"]
        finally:
            telemetry.disable()
        assert counters["kernel.flood.vectorized"] == 3
        assert timings["kernel.rounds"]["count"] == 3
        assert timings["kernel.frontier_peak"]["max"] >= 1

    def test_store_merge_instrumentation(self, tmp_path):
        a = ResultStore(str(tmp_path / "a"))
        b = ResultStore(str(tmp_path / "b"))
        a.put("k1", {"value": 1})
        b.put("k2", {"value": 2})
        instance = telemetry.enable(str(tmp_path / "tel"), process="merge")
        try:
            ResultStore(str(tmp_path / "merged")).merge(str(tmp_path / "a"), str(tmp_path / "b"))
            counters = instance.metrics_snapshot()["counters"]
            timings = instance.metrics_snapshot()["timings"]
        finally:
            telemetry.disable()
        assert counters["store.merges"] == 1
        assert timings["store.lock_wait_seconds"]["count"] >= 1
        merge_events = [
            r for r in _events(instance.path)
            if r["kind"] == "event" and r["name"] == "store.merge"
        ]
        assert merge_events[0]["records"] == 2
        assert merge_events[0]["sources"] == 2


class TestWorkerInstrumentation:
    def _spool(self, tmp_path, **kwargs):
        spool = JobSpool(str(tmp_path / "spool"), **kwargs)
        payloads = sweep_job_payloads("edge-meg", [16], 2, 7, 1)
        for payload in payloads:
            spool.enqueue(payload)
        return spool

    def test_worker_spans_and_queue_events(self, tmp_path):
        instance = telemetry.enable(str(tmp_path / "tel"), process="w")
        try:
            spool = self._spool(tmp_path)
            assert run_worker(
                spool.root, worker_id="w-1", exit_when_empty=True, log=lambda *_: None
            ) == 0
        finally:
            telemetry.disable()
        records = _events(instance.path)
        job_spans = [r for r in records if r.get("name") == "worker.job"]
        assert [r["outcome"] for r in job_spans] == ["done"]
        nested = [r for r in records if r.get("name") == "job.execute"]
        assert nested[0]["parent_id"] == job_spans[0]["span_id"]
        event_names = {r["name"] for r in records if r["kind"] == "event"}
        assert {"worker.start", "worker.exit", "queue.enqueue",
                "queue.claim", "queue.done"} <= event_names

    def test_profile_dir_writes_hotspots(self, tmp_path):
        spool = self._spool(tmp_path)
        profile_dir = tmp_path / "profiles"
        assert run_worker(
            spool.root, worker_id="w-1", exit_when_empty=True,
            log=lambda *_: None, profile_dir=str(profile_dir),
        ) == 0
        (profile,) = list(profile_dir.glob("profile-w-1-*.txt"))
        content = profile.read_text()
        assert "cumulative" in content
        assert "execute_job" in content

    def test_failed_job_emits_requeue_forensics(self, tmp_path):
        instance = telemetry.enable(str(tmp_path / "tel"), process="w")
        try:
            spool = JobSpool(str(tmp_path / "spool"), max_attempts=2)
            spool.write_config()  # the worker joins with the same retry budget
            spool.enqueue({"id": "bad-job", "kind": "sweep", "family": "nope",
                           "nodes": [8], "trials": 1, "seed": 0, "shard": [0, 1],
                           "store": "stores/bad-job"})
            run_worker(spool.root, worker_id="w-1", exit_when_empty=True,
                       log=lambda *_: None)
        finally:
            telemetry.disable()
        records = _events(instance.path)
        outcomes = [r["outcome"] for r in records if r.get("name") == "worker.job"]
        assert outcomes == ["failed", "failed"]
        summary = summarize_events(records)
        assert summary["queue"]["queue.requeue"] == 1
        assert summary["queue"]["queue.failed"] == 1
        assert [entry["name"] for entry in summary["requeues"]] == [
            "queue.requeue", "queue.failed",
        ]
        assert spool.failed_ids() == ["bad-job"]


class TestReport:
    def test_load_events_merges_sorts_and_skips_garbage(self, tmp_path):
        (tmp_path / "events-b.jsonl").write_text(
            json.dumps({"ts": 2.0, "process": "b", "kind": "event", "name": "later"})
            + "\n{truncated",
        )
        (tmp_path / "events-a.jsonl").write_text(
            json.dumps({"ts": 1.0, "process": "a", "kind": "event", "name": "earlier"})
            + "\n\n",
        )
        events = load_events(str(tmp_path))
        assert [event["name"] for event in events] == ["earlier", "later"]

    def test_load_events_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_events(str(tmp_path / "nope"))

    def test_summarize_and_format_cover_all_sections(self, tmp_path):
        events = [
            {"ts": 1.0, "process": "w1", "kind": "span", "name": "worker.job",
             "job": "job-slow", "duration_seconds": 2.0},
            {"ts": 4.0, "process": "w1", "kind": "span", "name": "worker.job",
             "job": "job-fast", "duration_seconds": 0.5},
            {"ts": 4.5, "process": "coord", "kind": "span", "name": "fleet.drain",
             "duration_seconds": 4.0},
            {"ts": 2.0, "process": "coord", "kind": "event", "name": "queue.requeue",
             "job": "job-slow", "attempts": 1, "error": "lease expired after 61.0s"},
            {"ts": 5.0, "process": "w1", "kind": "metrics",
             "counters": {"engine.store.hit": 1, "engine.store.miss": 3,
                          "engine.store.put": 3, "engine.backend.vectorized": 4},
             "gauges": {"engine.pool.utilization": 0.5},
             "timings": {"store.lock_wait_seconds":
                         {"count": 2, "total": 0.1, "min": 0.02, "max": 0.08,
                          "mean": 0.05}}},
        ]
        summary = summarize_events(events, top=1)
        assert summary["events"] == 5
        assert summary["phases"]["worker.job"]["count"] == 2
        assert summary["phases"]["worker.job"]["mean_seconds"] == pytest.approx(1.25)
        assert summary["store"]["hit_rate"] == pytest.approx(0.25)
        assert summary["workers"]["w1"]["busy_seconds"] == pytest.approx(2.5)
        assert len(summary["slowest_jobs"]) == 1
        assert summary["slowest_jobs"][0]["job"] == "job-slow"
        assert summary["queue"] == {"queue.requeue": 1}

        rendered = format_report(summary)
        for needle in (
            "phase wall-clock breakdown:", "worker.job", "hit rate 25%",
            "store lock wait:", "worker utilization:", "slowest jobs:",
            "queue transitions: requeue=1", "requeue forensics:",
            "lease expired", "kernel dispatch: vectorized=4",
        ):
            assert needle in rendered, needle

    def test_telemetry_report_round_trip(self, tmp_path):
        instance = telemetry.enable(str(tmp_path), process="p")
        try:
            with telemetry.span("engine.run", label="demo"):
                telemetry.count("engine.store.miss")
        finally:
            telemetry.disable()
        summary = telemetry_report(str(tmp_path))
        assert summary["phases"]["engine.run"]["count"] == 1
        assert summary["store"]["misses"] == 1
        assert instance.path is not None


class TestLogging:
    def test_get_logger_namespacing(self):
        assert get_logger().name == "repro"
        assert get_logger("worker").name == "repro.worker"

    def test_resolve_level(self, monkeypatch):
        assert resolve_level("debug") == logging.DEBUG
        assert resolve_level(logging.WARNING) == logging.WARNING
        monkeypatch.setenv(LOG_LEVEL_ENV, "warning")
        assert resolve_level(None) == logging.WARNING
        monkeypatch.delenv(LOG_LEVEL_ENV)
        assert resolve_level(None) == logging.INFO
        with pytest.raises(ValueError, match="unknown log level"):
            resolve_level("chatty")

    def test_configure_is_idempotent_and_captures_current_stdout(self, capsys):
        logger = configure("info")
        configure("debug")
        handlers = [
            handler for handler in logger.handlers
            if isinstance(handler, _CurrentStdoutHandler)
        ]
        assert len(handlers) == 1
        assert logger.level == logging.DEBUG
        # The handler resolves sys.stdout per emit, so pytest's capture
        # (installed after configure) still sees the output.
        get_logger("worker").info("hello from the daemon")
        out = capsys.readouterr().out
        assert "repro.worker: hello from the daemon" in out

    def test_worker_logs_through_cli(self, tmp_path, capsys):
        spool = JobSpool(str(tmp_path / "spool"))
        spool.write_config()
        code = main(["worker", "--spool", str(spool.root), "--exit-when-empty"])
        assert code == 0
        out = capsys.readouterr().out
        assert "exiting after 0 job(s)" in out

    def test_env_level_applies_when_flag_absent(self, tmp_path, capsys, monkeypatch):
        # REPRO_LOG_LEVEL alone silences the daemon's INFO progress lines.
        monkeypatch.setenv(LOG_LEVEL_ENV, "error")
        spool = JobSpool(str(tmp_path / "spool"))
        spool.write_config()
        assert main(["worker", "--spool", str(spool.root), "--exit-when-empty"]) == 0
        assert "exiting after" not in capsys.readouterr().out

    def test_cli_flag_beats_environment(self, tmp_path, capsys, monkeypatch):
        # An explicit --log-level always wins over REPRO_LOG_LEVEL.
        monkeypatch.setenv(LOG_LEVEL_ENV, "error")
        spool = JobSpool(str(tmp_path / "spool"))
        spool.write_config()
        assert main(["worker", "--spool", str(spool.root), "--exit-when-empty",
                     "--log-level", "info"]) == 0
        assert "exiting after 0 job(s)" in capsys.readouterr().out


class TestTelemetryCli:
    def test_report_command(self, tmp_path, capsys):
        store = tmp_path / "store"
        tel = tmp_path / "tel"
        argv = ["sweep", "edge-meg", "--nodes", "16", "--trials", "2", "--seed", "1",
                "--results-dir", str(store), "--telemetry", str(tel)]
        assert main(argv) == 0
        capsys.readouterr()
        json_path = tmp_path / "summary.json"
        assert main(["telemetry", "report", str(tel), "--json", str(json_path)]) == 0
        out = capsys.readouterr().out
        assert "telemetry:" in out
        assert "phase wall-clock breakdown:" in out
        summary = json.loads(json_path.read_text())
        assert summary["events"] > 0
        assert summary["store"]["misses"] >= 1

    def test_report_command_missing_directory(self, tmp_path, capsys):
        assert main(["telemetry", "report", str(tmp_path / "nope")]) == 2
        assert "no telemetry directory" in capsys.readouterr().err

    def test_report_command_empty_directory(self, tmp_path, capsys):
        os.makedirs(tmp_path / "empty")
        assert main(["telemetry", "report", str(tmp_path / "empty")]) == 1
        assert "no telemetry events" in capsys.readouterr().err

    def test_fleet_status_json(self, tmp_path, capsys):
        spool = JobSpool(str(tmp_path / "spool"))
        spool.enqueue({"id": "job-a", "kind": "sweep", "store": "stores/job-a"})
        assert main(["fleet", "status", str(spool.root), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["pending"] == 1
        assert payload["metrics"]["requeues"] == 0

    def test_worker_profile_requires_telemetry_dir(self, tmp_path, capsys):
        spool = JobSpool(str(tmp_path / "spool"))
        code = main(["worker", "--spool", str(spool.root), "--exit-when-empty",
                     "--profile"])
        assert code == 2
        assert "--profile needs a telemetry directory" in capsys.readouterr().err

    def test_invalid_log_level_rejected(self, tmp_path, capsys):
        code = main(["worker", "--spool", str(tmp_path / "spool"),
                     "--exit-when-empty", "--log-level", "shouty"])
        assert code == 2
        assert "unknown log level" in capsys.readouterr().err
