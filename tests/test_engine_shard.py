"""Tests for deterministic sharding: ShardSpec, Engine.run_shard, store merge.

The contract under test is the one CI's fan-out/fan-in job relies on: shard
``i`` of ``K`` produces bit-identical samples to trials ``i, i+K, i+2K, ...``
of the unsharded run — at any worker count — and merging the shard stores
reassembles a store bit-identical (same keys, same payloads) to the one an
unsharded run would have written.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.engine import (
    Engine,
    MergeConflictError,
    ResultStore,
    ShardSpec,
    TrialSpec,
    batch_store_key,
    parse_shard,
    shard_specs,
    shard_store_key,
)
from repro.experiments.runner import measure_flooding_sweep
from repro.graphs.grid import augmented_grid_graph, grid_graph
from repro.markov.builders import random_walk_on_graph
from repro.meg.edge_meg import EdgeMEG
from repro.meg.node_meg import NodeMEG
from repro.mobility.random_path import GraphRandomWalkMobility
from repro.mobility.random_waypoint import RandomWaypoint


def _node_meg(num_nodes: int = 20) -> NodeMEG:
    chain = random_walk_on_graph(grid_graph(3)).lazy(0.2)
    return NodeMEG(
        num_nodes,
        chain,
        lambda a, b: abs(a[0] - b[0]) + abs(a[1] - b[1]) <= 1,
    )


def _family_model(family: str):
    if family == "edge-meg":
        return EdgeMEG(24, p=0.12, q=0.4)
    if family == "node-meg":
        return _node_meg(20)
    if family == "grid":
        return GraphRandomWalkMobility(18, augmented_grid_graph(4, 2), radius_hops=1)
    return RandomWaypoint(18, side=4.0, radius=1.2, v_min=1.0)


FAMILIES = ["edge-meg", "node-meg", "grid", "mobility"]
_REFERENCE_CACHE: dict[str, tuple] = {}


def _family_spec(family: str) -> TrialSpec:
    return TrialSpec.from_model(_family_model(family), num_trials=7, seed=11)


def _reference_times(family: str) -> tuple:
    if family not in _REFERENCE_CACHE:
        _REFERENCE_CACHE[family] = Engine().run(_family_spec(family)).flooding_times
    return _REFERENCE_CACHE[family]


class TestShardSpec:
    def test_trial_indices_stride(self):
        spec = TrialSpec.from_model(EdgeMEG(10, p=0.2, q=0.4), num_trials=10, seed=0)
        shard = ShardSpec(spec, index=1, count=3)
        assert list(shard.trial_indices) == [1, 4, 7]
        assert shard.num_trials == 3

    def test_shards_partition_the_batch(self):
        spec = TrialSpec.from_model(EdgeMEG(10, p=0.2, q=0.4), num_trials=11, seed=0)
        shards = shard_specs(spec, 4)
        indices = sorted(i for shard in shards for i in shard.trial_indices)
        assert indices == list(range(11))

    def test_shard_seeds_match_unsharded_spawn(self):
        spec = TrialSpec.from_model(EdgeMEG(10, p=0.2, q=0.4), num_trials=9, seed=5)
        shard = ShardSpec(spec, index=2, count=4)
        all_seeds, shard_seeds = shard.spawn_seeds()
        assert [s.spawn_key for s in shard_seeds] == [
            all_seeds[i].spawn_key for i in [2, 6]
        ]

    def test_validation(self):
        spec = TrialSpec.from_model(EdgeMEG(10, p=0.2, q=0.4), num_trials=5, seed=0)
        with pytest.raises(ValueError):
            ShardSpec(spec, index=3, count=3)
        with pytest.raises(ValueError):
            ShardSpec(spec, index=-1, count=3)
        with pytest.raises(ValueError):
            ShardSpec(spec, index=0, count=0)
        with pytest.raises(TypeError):
            ShardSpec("not a spec", index=0, count=1)

    def test_empty_shard_allowed(self):
        spec = TrialSpec.from_model(EdgeMEG(10, p=0.2, q=0.4), num_trials=2, seed=0)
        shard = ShardSpec(spec, index=2, count=3)
        assert shard.num_trials == 0
        result = Engine().run_shard(shard)
        assert result.flooding_times == ()
        assert result.num_nodes == 10

    def test_parse_shard(self):
        assert parse_shard("0/3") == (0, 3)
        assert parse_shard("2/7") == (2, 7)
        for bad in ("3/3", "-1/3", "1", "a/b", "1/2/3", "0/0"):
            with pytest.raises(ValueError):
                parse_shard(bad)


class TestShardDeterminism:
    """Satellite: K-sharded merged == unsharded, every family, K in {2,3,7}."""

    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("count", [2, 3, 7])
    @pytest.mark.parametrize("workers", [1, 2])
    def test_sharded_equals_unsharded_sample_for_sample(self, family, count, workers):
        reference = _reference_times(family)
        spec = _family_spec(family)
        engine = Engine(workers=workers)
        merged: list = [None] * spec.num_trials
        for shard in shard_specs(spec, count):
            times = engine.run_shard(shard).flooding_times
            assert times == reference[shard.index :: count]
            merged[shard.index :: count] = times
        assert tuple(merged) == reference


class TestShardStore:
    def _spec(self) -> TrialSpec:
        return TrialSpec.from_model(EdgeMEG(24, p=0.12, q=0.4), num_trials=7, seed=11)

    def test_merged_shard_stores_equal_unsharded_store(self, tmp_path):
        spec = self._spec()
        reference = ResultStore(tmp_path / "reference")
        Engine(store=reference).run(spec)
        stores = []
        for shard in shard_specs(spec, 3):
            store = ResultStore(tmp_path / f"shard{shard.index}")
            Engine(store=store).run_shard(shard)
            stores.append(store)
        merged = ResultStore(tmp_path / "merged")
        report = merged.merge(*stores)
        assert report.assembled == 1
        assert report.pending_shards == 0
        assert {k: merged.get(k) for k in merged.keys()} == {
            k: reference.get(k) for k in reference.keys()
        }
        # Byte-identical files once the reference is in canonical form.
        reference.compact()
        with open(reference.path, encoding="utf-8") as handle:
            reference_bytes = handle.read()
        with open(merged.path, encoding="utf-8") as handle:
            merged_bytes = handle.read()
        assert reference_bytes == merged_bytes

    def test_shard_record_is_self_describing(self, tmp_path):
        spec = self._spec()
        store = ResultStore(tmp_path)
        shard = ShardSpec(spec, index=1, count=3)
        Engine(store=store).run_shard(shard)
        parent = batch_store_key(spec)
        record = store.get(shard_store_key(parent, 1, 3))
        assert record["shard"] == {"index": 1, "count": 3, "num_trials": 7}
        assert record["parent_key"] == parent
        assert len(record["flooding_times"]) == shard.num_trials

    def test_shard_rerun_served_from_cache(self, tmp_path):
        spec = self._spec()
        store = ResultStore(tmp_path)
        shard = ShardSpec(spec, index=0, count=2)
        first = Engine(store=store).run_shard(shard)
        second = Engine(store=store).run_shard(shard)
        assert not first.from_cache
        assert second.from_cache
        assert second.flooding_times == first.flooding_times

    def test_full_batch_record_serves_shards(self, tmp_path):
        spec = self._spec()
        store = ResultStore(tmp_path)
        full = Engine(store=store).run(spec)
        shard_result = Engine(store=store).run_shard(ShardSpec(spec, index=1, count=3))
        assert shard_result.from_cache
        assert shard_result.flooding_times == full.flooding_times[1::3]

    def test_mixed_backend_shards_assemble_with_identical_samples(self, tmp_path):
        spec = self._spec()
        reference = Engine().run(spec).flooding_times
        backends = {0: "auto", 1: "set", 2: "vectorized"}
        stores = []
        for shard in shard_specs(spec, 3):
            store = ResultStore(tmp_path / f"shard{shard.index}")
            Engine(store=store, backend=backends[shard.index]).run_shard(shard)
            stores.append(store)
        merged = ResultStore(tmp_path / "merged")
        report = merged.merge(*stores)
        assert report.assembled == 1
        record = merged.get(batch_store_key(spec))
        assert tuple(record["flooding_times"]) == reference
        assert record["backend"] == "mixed"

    def test_incomplete_shard_group_kept_pending(self, tmp_path):
        spec = self._spec()
        stores = []
        for shard in shard_specs(spec, 3)[:2]:  # one shard missing
            store = ResultStore(tmp_path / f"shard{shard.index}")
            Engine(store=store).run_shard(shard)
            stores.append(store)
        merged = ResultStore(tmp_path / "merged")
        report = merged.merge(*stores)
        assert report.assembled == 0
        assert report.pending_shards == 2
        assert len(merged) == 2
        # Merging in the last shard later completes the batch.
        last = ResultStore(tmp_path / "shard2")
        Engine(store=last).run_shard(shard_specs(spec, 3)[2])
        report = merged.merge(last)
        assert report.assembled == 1
        assert len(merged) == 1


class TestStoreMerge:
    def test_union_of_disjoint_stores(self, tmp_path):
        a = ResultStore(tmp_path / "a")
        b = ResultStore(tmp_path / "b")
        a.put("k1", {"value": 1})
        b.put("k2", {"value": 2})
        merged = ResultStore(tmp_path / "out")
        report = merged.merge(a, b)
        assert report.records == 2
        assert report.adopted == 2
        assert merged.get("k1") == {"value": 1}
        assert merged.get("k2") == {"value": 2}

    def test_identical_payloads_deduplicate(self, tmp_path):
        a = ResultStore(tmp_path / "a")
        b = ResultStore(tmp_path / "b")
        a.put("k", {"value": 1})
        b.put("k", {"value": 1})
        merged = ResultStore(tmp_path / "out")
        assert merged.merge(a, b).records == 1

    def test_conflicting_payloads_raise(self, tmp_path):
        a = ResultStore(tmp_path / "a")
        b = ResultStore(tmp_path / "b")
        a.put("k", {"value": 1})
        b.put("k", {"value": 2})
        merged = ResultStore(tmp_path / "out")
        with pytest.raises(MergeConflictError):
            merged.merge(a, b)

    def test_merge_accepts_paths_and_stores(self, tmp_path):
        a = ResultStore(tmp_path / "a")
        a.put("k1", {"value": 1})
        merged = ResultStore(tmp_path / "out")
        report = merged.merge(str(tmp_path / "a"))  # directory path
        assert report.records == 1
        report = merged.merge(a.path)  # explicit .jsonl path
        assert report.records == 1

    def test_malformed_shard_record_carried_verbatim(self, tmp_path):
        # Shard-shaped but missing num_trials: not assemblable, must survive
        # the merge untouched instead of crashing it.
        malformed = {
            "shard": {"index": 0, "count": 2},
            "parent_key": "p",
            "flooding_times": [1, 2],
        }
        a = ResultStore(tmp_path / "a")
        a.put("k", malformed)
        merged = ResultStore(tmp_path / "out")
        report = merged.merge(a)
        assert report.assembled == 0
        assert report.pending_shards == 0  # not recognised as a shard at all
        assert merged.get("k") == malformed

    def test_missing_source_fails_loudly_without_side_effects(self, tmp_path):
        a = ResultStore(tmp_path / "a")
        a.put("k1", {"value": 1})
        merged = ResultStore(tmp_path / "out")
        with pytest.raises(FileNotFoundError):
            merged.merge(a, tmp_path / "no-such-shard")
        assert not (tmp_path / "no-such-shard").exists()
        assert len(merged) == 0  # nothing partially merged

    def test_merge_into_nonempty_store(self, tmp_path):
        merged = ResultStore(tmp_path / "out")
        merged.put("existing", {"value": 0})
        a = ResultStore(tmp_path / "a")
        a.put("k1", {"value": 1})
        report = merged.merge(a)
        assert report.records == 2
        assert merged.get("existing") == {"value": 0}

    def test_store_at_jsonl_and_directory(self, tmp_path):
        by_file = ResultStore.at(tmp_path / "out.jsonl")
        assert by_file.path == str(tmp_path / "out.jsonl")
        by_dir = ResultStore.at(tmp_path / "subdir")
        assert by_dir.path == str(tmp_path / "subdir" / "results.jsonl")


class TestSweepSharding:
    def test_sweep_shard_samples_are_slices(self):
        common = dict(num_trials=6, rng=7, factory_kwargs={"q": 0.4})
        full = measure_flooding_sweep(_sweep_factory, [12, 16], **common)
        for index in range(3):
            part = measure_flooding_sweep(
                _sweep_factory, [12, 16], shard=(index, 3), **common
            )
            for full_point, part_point in zip(full, part):
                assert part_point.samples == full_point.samples[index::3]

    def test_sweep_rejects_empty_shards(self):
        with pytest.raises(ValueError):
            measure_flooding_sweep(
                _sweep_factory, [12], num_trials=2, rng=0, shard=(0, 3)
            )


def _sweep_factory(num_nodes: int, q: float = 0.3) -> EdgeMEG:
    """Module-level sweep factory with a stable cache identity."""
    return EdgeMEG(num_nodes, p=0.1, q=q)


class TestSweepCLI:
    def test_sweep_runs_and_reports(self, capsys):
        code = main(
            ["sweep", "edge-meg", "--nodes", "16,20", "--trials", "4", "--seed", "2"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "sweep:  edge-meg over n = [16, 20]" in output
        assert "n=    16" in output

    def test_sweep_shard_merge_matches_reference(self, tmp_path, capsys):
        base = [
            "sweep", "edge-meg", "--nodes", "14,18", "--trials", "5", "--seed", "3",
        ]
        for index in range(3):
            code = main(
                base
                + ["--shard", f"{index}/3", "--results-dir", str(tmp_path / f"s{index}")]
            )
            assert code == 0
        merged_path = str(tmp_path / "merged.jsonl")
        code = main(
            ["merge-results", merged_path]
            + [str(tmp_path / f"s{index}") for index in range(3)]
        )
        assert code == 0
        assert "assembled batches: 2" in capsys.readouterr().out
        code = main(base + ["--results-dir", str(tmp_path / "reference")])
        assert code == 0
        reference = ResultStore(tmp_path / "reference")
        reference.compact()
        with open(reference.path, encoding="utf-8") as handle:
            reference_bytes = handle.read()
        with open(merged_path, encoding="utf-8") as handle:
            merged_bytes = handle.read()
        assert reference_bytes == merged_bytes

    def test_sweep_json_output(self, tmp_path, capsys):
        json_path = tmp_path / "sweep.json"
        code = main(
            [
                "sweep", "edge-meg", "--nodes", "14", "--trials", "3", "--seed", "1",
                "--shard", "1/2", "--json", str(json_path),
            ]
        )
        assert code == 0
        import json

        payload = json.loads(json_path.read_text())
        assert payload["shard"] == [1, 2]
        assert len(payload["measurements"]) == 1

    def test_merge_conflict_exits_nonzero(self, tmp_path, capsys):
        a = ResultStore(tmp_path / "a")
        b = ResultStore(tmp_path / "b")
        a.put("k", {"value": 1})
        b.put("k", {"value": 2})
        code = main(
            ["merge-results", str(tmp_path / "out"), str(tmp_path / "a"), str(tmp_path / "b")]
        )
        assert code == 1
        assert "merge failed" in capsys.readouterr().err

    def test_invalid_shard_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "edge-meg", "--nodes", "14", "--shard", "3/3"])

    def test_shard_count_beyond_trials_is_a_clean_error(self, capsys):
        code = main(
            ["sweep", "edge-meg", "--nodes", "14", "--trials", "2", "--shard", "0/5"]
        )
        assert code == 2
        assert "exceeds --trials" in capsys.readouterr().err

    def test_merge_missing_source_exits_nonzero(self, tmp_path, capsys):
        a = ResultStore(tmp_path / "a")
        a.put("k1", {"value": 1})
        code = main(
            ["merge-results", str(tmp_path / "out"), str(tmp_path / "a"),
             str(tmp_path / "missing")]
        )
        assert code == 1
        assert "no result store at" in capsys.readouterr().err
