"""The live-observability layer: traces, the tailer/exposition, fleet top.

Covers the PR 10 surface end to end at the unit level:

* ``repro.telemetry.trace`` — scope mechanics, record stamping and
  cross-process tree reconstruction (including queue-wait synthesis and
  the critical path);
* serve-side propagation — ``X-Trace-Id``, client-supplied trace hints,
  and the invisibility contract (tracing never perturbs tickets, ETags
  or response bytes);
* ``repro.telemetry.timeseries`` — the incremental tailer (partial
  lines, truncation, corrupt-line counting, checkpoints, window stats)
  and the Prometheus exposition it renders;
* ``repro.fleet.top`` — frame gathering/rendering and the refresh loop
  via its injection points;
* the ``repro fleet top`` / ``repro telemetry trace`` / ``repro
  telemetry export`` CLI commands.

The cross-*process* smoke (serve → worker → pool children reconstructed
from one trace id) runs in CI's serve-smoke job; here everything is
single-process and synthetic so it stays fast and deterministic.
"""

from __future__ import annotations

import io
import json
import os

import pytest

from repro.cli import main
from repro.engine import ResultStore
from repro.fleet import JobSpool
from repro.fleet.top import gather_frame, render_frame, run_top
from repro.serve import SimulationService
from repro.telemetry import core as telemetry
from repro.telemetry import trace as tracectx
from repro.telemetry.timeseries import (
    TelemetryTailer,
    metric_name,
    render_prometheus,
    validate_exposition,
)
from repro.telemetry.trace import (
    format_trace,
    list_traces,
    summarize_trace,
)


@pytest.fixture(autouse=True)
def _no_leaked_telemetry():
    """Every test starts and ends with telemetry disabled and no scope."""
    telemetry.disable()
    yield
    telemetry.disable()


# --------------------------------------------------------------------- #
# trace scopes and stamping
# --------------------------------------------------------------------- #
class TestTraceContext:
    def test_mint_trace_id_shape(self):
        first, second = tracectx.mint_trace_id(), tracectx.mint_trace_id()
        assert len(first) == 16
        int(first, 16)  # hex
        assert first != second

    def test_attach_trace_nesting(self):
        assert tracectx.current_trace_id() is None
        with tracectx.attach_trace("aaaa", parent="span-1"):
            assert tracectx.current_trace_id() == "aaaa"
            assert tracectx.current_parent() == "span-1"
            with tracectx.attach_trace("bbbb"):
                assert tracectx.current_trace_id() == "bbbb"
                assert tracectx.current_parent() is None
            assert tracectx.current_trace_id() == "aaaa"
        assert tracectx.current_trace_id() is None

    def test_falsy_trace_is_a_noop_scope(self):
        with tracectx.attach_trace(None):
            assert tracectx.current_trace_id() is None
        with tracectx.attach_trace(""):
            assert tracectx.current_trace_id() is None

    def test_attach_carrier_forms(self):
        with tracectx.attach_carrier("cccc"):
            assert tracectx.current_trace_id() == "cccc"
        with tracectx.attach_carrier({"id": "dddd", "parent": "span-9"}):
            assert tracectx.current_trace_id() == "dddd"
            assert tracectx.current_parent() == "span-9"
        with tracectx.attach_carrier({}):
            assert tracectx.current_trace_id() is None
        with tracectx.attach_carrier(None):
            assert tracectx.current_trace_id() is None

    def test_stamp_marks_records_and_top_level_spans(self):
        with tracectx.attach_trace("eeee", parent="remote-1"):
            event = {"kind": "event", "name": "x"}
            tracectx.stamp(event)
            assert event["trace"] == "eeee"
            assert "trace_parent" not in event

            root_span = {"kind": "span", "name": "y", "parent_id": None}
            tracectx.stamp(root_span)
            assert root_span["trace_parent"] == "remote-1"

            child_span = {"kind": "span", "name": "z", "parent_id": "local-1"}
            tracectx.stamp(child_span)
            assert "trace_parent" not in child_span

    def test_stamp_never_overwrites(self):
        with tracectx.attach_trace("ffff", parent="remote-2"):
            record = {"kind": "span", "parent_id": None,
                      "trace": "orig", "trace_parent": "orig-parent"}
            tracectx.stamp(record)
            assert record["trace"] == "orig"
            assert record["trace_parent"] == "orig-parent"

    def test_stamp_without_scope_is_a_noop(self):
        record = {"kind": "span", "parent_id": None}
        tracectx.stamp(record)
        assert "trace" not in record

    def test_carrier_includes_current_span_id(self, tmp_path):
        telemetry.enable(str(tmp_path))
        with tracectx.attach_trace("abcd"):
            with telemetry.span("outer"):
                carrier = telemetry.trace_carrier()
                assert carrier["id"] == "abcd"
                assert carrier.get("parent")  # the live span's id
        telemetry.disable()
        assert telemetry.trace_carrier() is None


# --------------------------------------------------------------------- #
# reconstruction
# --------------------------------------------------------------------- #
def _synthetic_trace(trace="t1"):
    """A two-process serve → worker → chunk trace plus an unrelated record."""
    return [
        {"kind": "span", "name": "serve.request", "span_id": "s1",
         "parent_id": None, "process": "server", "ts": 10.0,
         "duration_seconds": 1.0, "trace": trace},
        {"kind": "event", "name": "queue.enqueue", "job": "job-a",
         "process": "server", "ts": 9.5, "trace": trace},
        {"kind": "span", "name": "worker.job", "span_id": "w1",
         "parent_id": None, "trace_parent": "s1", "process": "worker",
         "ts": 12.0, "duration_seconds": 1.5, "job": "job-a", "trace": trace},
        {"kind": "span", "name": "engine.chunk", "span_id": "c1",
         "parent_id": "w1", "process": "worker", "ts": 11.8,
         "duration_seconds": 0.8, "trace": trace},
        # noise that must not leak into the trace
        {"kind": "span", "name": "other", "span_id": "o1", "parent_id": None,
         "process": "elsewhere", "ts": 50.0, "duration_seconds": 5.0},
    ]


class TestTraceReconstruction:
    def test_summarize_links_across_processes(self):
        summary = summarize_trace(_synthetic_trace(), "t1")
        assert summary["spans"] == 3
        assert summary["events"] == 1
        assert summary["processes"] == ["server", "worker"]
        assert len(summary["roots"]) == 1
        root = summary["roots"][0]
        assert root["name"] == "serve.request"
        # worker.job attached through trace_parent, chunk through parent_id
        assert [child["name"] for child in root["children"]] == ["worker.job"]
        worker = root["children"][0]
        assert [child["name"] for child in worker["children"]] == ["engine.chunk"]
        # wall clock spans the whole tree: 9.0 (serve start) .. 12.0
        assert summary["started"] == pytest.approx(9.0)
        assert summary["wall_seconds"] == pytest.approx(3.0)

    def test_queue_wait_synthesis(self):
        summary = summarize_trace(_synthetic_trace(), "t1")
        queue = summary["queue"]
        assert queue == pytest.approx(
            {"jobs_enqueued": 1, "jobs_executed": 1,
             "mean_wait_seconds": 1.0, "max_wait_seconds": 1.0}
        )
        worker = summary["roots"][0]["children"][0]
        # enqueued at 9.5, started at 12.0 - 1.5 = 10.5
        assert worker["queue_wait_seconds"] == pytest.approx(1.0)

    def test_critical_path_is_the_latest_finishing_spine(self):
        path = summarize_trace(_synthetic_trace(), "t1")["critical_path"]
        assert [step["name"] for step in path] == [
            "serve.request", "worker.job", "engine.chunk",
        ]

    def test_format_trace_renders_the_tree(self):
        text = format_trace(summarize_trace(_synthetic_trace(), "t1"))
        assert "trace t1: 3 spans across 2 process(es)" in text
        assert "processes: server, worker" in text
        assert "queue_wait=1.000s" in text
        assert "critical path" in text
        # nesting by indentation
        assert "\nserve.request [server]" in text
        assert "\n  worker.job [worker]" in text
        assert "\n    engine.chunk [worker]" in text

    def test_unknown_trace_is_empty(self):
        summary = summarize_trace(_synthetic_trace(), "nope")
        assert summary["spans"] == 0 and summary["events"] == 0
        assert "no spans recorded" in format_trace(summary)

    def test_list_traces(self):
        events = _synthetic_trace("t1") + _synthetic_trace("t2")
        # make t2 start later so it lists first (newest first)
        for event in events[5:]:
            if "ts" in event:
                event["ts"] = event["ts"] + 100.0
        entries = list_traces(events)
        assert [entry["trace"] for entry in entries] == ["t2", "t1"]
        assert entries[1] == {
            "trace": "t1", "root": "serve.request", "spans": 3,
            "processes": 2, "started": pytest.approx(9.0),
            "wall_seconds": pytest.approx(3.0),
        }


# --------------------------------------------------------------------- #
# serve propagation + invisibility
# --------------------------------------------------------------------- #
def _service(tmp_path) -> SimulationService:
    store = ResultStore(str(tmp_path / "store"))
    spool = JobSpool(tmp_path / "spool")
    return SimulationService(store, spool)


def _body(**overrides) -> dict:
    body = {"kind": "sweep", "family": "edge-meg", "nodes": [12],
            "trials": 2, "seed": 3}
    body.update(overrides)
    return body


class TestServeTracing:
    def test_cold_submit_mints_and_stamps_a_trace(self, tmp_path):
        service = _service(tmp_path)
        result = service.submit(_body())
        assert result.status == 202
        trace_id = result.headers["X-Trace-Id"]
        assert len(trace_id) == 16
        assert result.payload["trace"] == trace_id
        # the spooled job descriptors carry the id as execution metadata
        job_ids = service.spool.pending_ids()
        assert job_ids
        for job_id in job_ids:
            path = os.path.join(service.spool.root, "jobs", f"{job_id}.json")
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
            assert payload["trace"]["id"] == trace_id

    def test_client_supplied_trace_is_echoed(self, tmp_path):
        service = _service(tmp_path)
        result = service.submit(_body(trace="my-trace-01"))
        assert result.status == 202
        assert result.headers["X-Trace-Id"] == "my-trace-01"

    @pytest.mark.parametrize("bad", ["", "x" * 65, "bad trace!", 42, {"id": "x"}])
    def test_invalid_trace_hint_is_a_400(self, tmp_path, bad):
        service = _service(tmp_path)
        result = service.submit(_body(trace=bad))
        assert result.status == 400
        assert "trace must be a short alphanumeric id" in result.payload["error"]["message"]

    def test_trace_hint_does_not_perturb_identity(self, tmp_path):
        plain_service = _service(tmp_path / "a")
        traced_service = _service(tmp_path / "b")
        plain = plain_service.submit(_body())
        traced = traced_service.submit(_body(trace="abcdef0123456789"))
        assert plain.status == traced.status == 202
        assert plain.payload["ticket"] == traced.payload["ticket"]
        assert plain.headers["ETag"] == traced.headers["ETag"]
        # deterministic job ids: the trace hint never reaches the digest
        assert plain_service.spool.pending_ids() == traced_service.spool.pending_ids()

    def test_poll_echoes_the_submission_trace(self, tmp_path):
        service = _service(tmp_path)
        submitted = service.submit(_body(trace="roundtrip-trace"))
        polled = service.poll(submitted.payload["ticket"])
        assert polled.headers["X-Trace-Id"] == "roundtrip-trace"

    def test_metrics_text_is_valid_exposition(self, tmp_path):
        telemetry.enable(str(tmp_path / "telemetry"))
        service = _service(tmp_path)
        service.submit(_body())           # miss
        service.submit(_body())           # duplicate -> still cold/pending
        text = service.metrics_text()
        assert validate_exposition(text) > 0
        values = {}
        for line in text.splitlines():
            if line and not line.startswith("#"):
                name = line.split("{")[0].split(" ")[0]
                values[name] = float(line.rsplit(" ", 1)[1])
        assert values["repro_serve_requests_total"] >= 2
        assert values["repro_traces_total"] >= 0
        assert "repro_build_info" in values

    def test_metrics_text_without_telemetry_directory(self, tmp_path):
        service = _service(tmp_path)
        service.submit(_body())
        text = service.metrics_text()
        assert validate_exposition(text) > 0


# --------------------------------------------------------------------- #
# the incremental tailer
# --------------------------------------------------------------------- #
def _append(path, lines) -> None:
    with open(path, "a", encoding="utf-8") as handle:
        for line in lines:
            handle.write(line if isinstance(line, str) else json.dumps(line))
            handle.write("\n")


class TestTelemetryTailer:
    def test_incremental_poll(self, tmp_path):
        events = tmp_path / "events-a.jsonl"
        _append(events, [{"kind": "event", "name": "queue.done", "job": "j1",
                          "ts": 1.0, "process": "w1"}])
        tailer = TelemetryTailer(str(tmp_path), window=60.0)
        assert tailer.poll() == 1
        assert tailer.poll() == 0  # nothing new
        _append(events, [{"kind": "event", "name": "queue.done", "job": "j2",
                          "ts": 2.0, "process": "w1"}])
        assert tailer.poll() == 1
        assert tailer.events_total == 2

    def test_partial_line_stays_unread_until_complete(self, tmp_path):
        events = tmp_path / "events-a.jsonl"
        record = json.dumps({"kind": "event", "name": "x", "ts": 1.0})
        with open(events, "w", encoding="utf-8") as handle:
            handle.write(record[: len(record) // 2])  # mid-write
        tailer = TelemetryTailer(str(tmp_path))
        assert tailer.poll() == 0
        assert tailer.skipped_lines == 0
        with open(events, "a", encoding="utf-8") as handle:
            handle.write(record[len(record) // 2 :] + "\n")
        assert tailer.poll() == 1

    def test_truncation_resets_the_offset(self, tmp_path):
        events = tmp_path / "events-a.jsonl"
        _append(events, [{"kind": "event", "name": "x", "ts": 1.0}] * 3)
        tailer = TelemetryTailer(str(tmp_path))
        assert tailer.poll() == 3
        with open(events, "w", encoding="utf-8") as handle:  # truncate + rewrite
            handle.write(json.dumps({"kind": "event", "name": "y", "ts": 2.0}) + "\n")
        assert tailer.poll() == 1
        assert tailer.events_total == 4

    def test_corrupt_lines_are_counted_not_fatal(self, tmp_path):
        events = tmp_path / "events-a.jsonl"
        _append(events, [
            {"kind": "event", "name": "ok", "ts": 1.0},
            "{not json",
            '["not", "a", "dict"]',
            {"kind": "event", "name": "ok2", "ts": 2.0},
        ])
        tailer = TelemetryTailer(str(tmp_path))
        assert tailer.poll() == 2
        assert tailer.skipped_lines == 2

    def test_metrics_merge_counters_add_gauges_override(self, tmp_path):
        _append(tmp_path / "events-a.jsonl", [
            {"kind": "metrics", "ts": 1.0, "process": "a",
             "counters": {"jobs": 2}, "gauges": {"depth": 5},
             "timings": {"t": {"count": 1, "total": 1.0, "min": 1.0,
                               "max": 1.0, "mean": 1.0}}},
            {"kind": "metrics", "ts": 2.0, "process": "b",
             "counters": {"jobs": 3}, "gauges": {"depth": 1},
             "timings": {"t": {"count": 1, "total": 3.0, "min": 3.0,
                               "max": 3.0, "mean": 3.0}}},
        ])
        tailer = TelemetryTailer(str(tmp_path))
        tailer.poll()
        assert tailer.counters["jobs"] == 5
        assert tailer.gauges["depth"] == 1.0
        assert tailer.timings["t"] == {
            "count": 2, "total": 4.0, "min": 1.0, "max": 3.0, "mean": 2.0,
        }

    def test_active_jobs_and_window_stats(self, tmp_path):
        now = 100.0
        _append(tmp_path / "events-a.jsonl", [
            {"kind": "event", "name": "queue.claim", "job": "j1",
             "worker": "w1", "ts": now - 30, "attempts": 1},
            {"kind": "event", "name": "queue.claim", "job": "j2",
             "worker": "w2", "ts": now - 20, "attempts": 1},
            {"kind": "span", "name": "worker.job", "job": "j2",
             "process": "w2", "ts": now - 10, "duration_seconds": 10.0},
            {"kind": "event", "name": "queue.done", "job": "j2",
             "ts": now - 10},
            {"kind": "event", "name": "queue.requeue", "job": "j3",
             "ts": now - 5},
        ])
        tailer = TelemetryTailer(str(tmp_path), window=60.0)
        tailer.poll()
        assert set(tailer.active_jobs) == {"j1"}  # j2 completed
        stats = tailer.window_stats(now=now)
        assert stats["jobs_completed"] == 1
        assert stats["jobs_requeued"] == 1
        assert stats["jobs_per_second"] == pytest.approx(1 / 60.0)
        assert stats["requeue_rate"] == pytest.approx(0.5)
        assert stats["job_latency_p50_seconds"] == pytest.approx(10.0)
        assert stats["worker_busy_seconds"]["w2"] == pytest.approx(10.0)
        # outside the window everything ages out
        empty = tailer.window_stats(now=now + 1000)
        assert empty["jobs_completed"] == 0
        assert empty["job_latency_count"] == 0

    def test_checkpoint_round_trip(self, tmp_path):
        events = tmp_path / "events-a.jsonl"
        _append(events, [{"kind": "event", "name": "x", "ts": 1.0}] * 4)
        first = TelemetryTailer(str(tmp_path))
        assert first.poll() == 4
        checkpoint = tmp_path / "tail.ckpt"
        first.save_checkpoint(str(checkpoint))

        resumed = TelemetryTailer(str(tmp_path))
        assert resumed.load_checkpoint(str(checkpoint))
        assert resumed.poll() == 0  # already consumed by the prior run
        _append(events, [{"kind": "event", "name": "y", "ts": 2.0}])
        assert resumed.poll() == 1

    def test_load_checkpoint_rejects_garbage(self, tmp_path):
        tailer = TelemetryTailer(str(tmp_path))
        assert not tailer.load_checkpoint(str(tmp_path / "missing"))
        bad = tmp_path / "bad.ckpt"
        bad.write_text("{not json")
        assert not tailer.load_checkpoint(str(bad))

    def test_exposition_renders_and_validates(self, tmp_path):
        _append(tmp_path / "events-a.jsonl", [
            {"kind": "metrics", "ts": 1.0, "process": "a",
             "counters": {"engine.store.hit": 3, "engine.store.miss": 1},
             "gauges": {}, "timings": {}},
            {"kind": "span", "name": "worker.job", "job": "j1", "trace": "t1",
             "process": "w1", "ts": 2.0, "duration_seconds": 1.0},
        ])
        tailer = TelemetryTailer(str(tmp_path))
        text = tailer.exposition(version="9.9.9")
        assert validate_exposition(text) > 0
        assert 'repro_build_info{version="9.9.9"} 1' in text
        assert "repro_engine_store_hit_total 3" in text
        assert "repro_traces_total 1" in text
        assert "repro_cache_hit_ratio 0.75" in text
        assert "repro_job_latency_seconds_count" in text

    def test_validate_exposition_rejects_malformed(self):
        with pytest.raises(ValueError):
            validate_exposition("repro_bad{unclosed 1\n")
        with pytest.raises(ValueError):
            validate_exposition("# TYPE repro_x wrongtype\nrepro_x 1\n")
        with pytest.raises(ValueError):
            validate_exposition("repro_x not-a-number\n")

    def test_metric_name_sanitizes(self):
        assert metric_name("engine.store.hit") == "repro_engine_store_hit"
        assert metric_name("weird chars!") == "repro_weird_chars_"

    def test_render_prometheus_escapes_labels(self):
        text = render_prometheus([
            {"name": "repro_x", "type": "gauge", "help": "an \"x\"\nvalue",
             "samples": [{"labels": {"k": 'a"b\\c'}, "value": 1}]},
        ])
        assert validate_exposition(text) == 1


# --------------------------------------------------------------------- #
# fleet top
# --------------------------------------------------------------------- #
def _spooled(tmp_path, jobs=3) -> JobSpool:
    spool = JobSpool(tmp_path / "spool")
    for index in range(jobs):
        spool.enqueue({"id": f"p1-job-{index:03d}", "kind": "sweep",
                       "store": f"stores/job-{index}"})
    return spool


class TestFleetTop:
    def test_gather_frame_spool_only(self, tmp_path):
        spool = _spooled(tmp_path)
        claimed = spool.claim("worker-1")
        frame = gather_frame(spool)
        assert frame["counts"] == {"total": 3, "pending": 2, "active": 1,
                                   "done": 0, "failed": 0}
        assert not frame["drained"]
        assert frame["eta_seconds"] is None  # no throughput yet
        workers = {row["worker"]: row for row in frame["workers"]}
        assert workers["worker-1"]["job"] == claimed.id
        assert "telemetry" not in frame
        assert json.dumps(frame)  # JSON-able as promised

    def test_gather_frame_with_tailer(self, tmp_path):
        spool = _spooled(tmp_path)
        spool.mark_done(spool.claim("w1").id)
        now = 100.0
        telemetry_dir = tmp_path / "telemetry"
        os.makedirs(telemetry_dir)
        _append(telemetry_dir / "events-w1.jsonl", [
            {"kind": "span", "name": "worker.job", "job": "p1-job-000",
             "process": "w1", "ts": now - 5, "duration_seconds": 12.0,
             "trace": "t1"},
            {"kind": "event", "name": "queue.done", "job": "p1-job-000",
             "ts": now - 5},
            {"kind": "event", "name": "queue.claim", "job": "p1-job-001",
             "worker": "w1", "ts": now - 40, "attempts": 2},
        ])
        tailer = TelemetryTailer(str(telemetry_dir), window=60.0)
        frame = gather_frame(spool, tailer, now=now)
        assert frame["jobs_per_second"] == pytest.approx(1 / 60.0)
        # 2 pending + 0 active leases remaining
        assert frame["eta_seconds"] == pytest.approx(2 * 60.0)
        assert frame["telemetry"]["traces"] == 1
        assert frame["in_flight"][0] == {
            "job": "p1-job-001", "worker": "w1", "attempts": 2,
            "running_seconds": pytest.approx(40.0),
        }
        workers = {row["worker"]: row for row in frame["workers"]}
        assert workers["w1"]["busy_fraction"] == pytest.approx(12.0 / 60.0)

    def test_render_frame_panels(self, tmp_path):
        spool = _spooled(tmp_path, jobs=2)
        job = spool.claim("worker-long-name")
        spool.heartbeat(job.id)
        frame = gather_frame(spool)
        text = render_frame(frame, width=100)
        assert "repro fleet top —" in text
        assert "jobs: 2 total | 1 pending  1 active" in text
        assert "worker-long-name" in text
        assert "eta: unknown" in text

    def test_render_frame_truncates_to_width(self, tmp_path):
        frame = gather_frame(_spooled(tmp_path))
        for line in render_frame(frame, width=40).splitlines():
            assert len(line) <= 40

    def test_run_top_once_writes_one_plain_frame(self, tmp_path):
        spool = _spooled(tmp_path)
        stream = io.StringIO()
        code = run_top(str(spool.root), once=True, stream=stream)
        assert code == 0
        out = stream.getvalue()
        assert out.count("repro fleet top —") == 1
        assert "\x1b[" not in out  # no ANSI without a TTY

    def test_run_top_until_drained(self, tmp_path):
        spool = _spooled(tmp_path, jobs=1)
        spool.mark_done(spool.claim("w1").id)
        stream = io.StringIO()
        sleeps = []
        code = run_top(str(spool.root), follow_until_drained=True,
                       stream=stream, sleep=sleeps.append)
        assert code == 0
        assert sleeps == []  # drained on the first frame

    def test_run_top_keyboard_interrupt_is_clean(self, tmp_path):
        spool = _spooled(tmp_path)

        def interrupt(_):
            raise KeyboardInterrupt

        stream = io.StringIO()
        code = run_top(str(spool.root), stream=stream, sleep=interrupt)
        assert code == 0
        assert stream.getvalue().endswith("\n")

    def test_run_top_rejects_bad_interval(self, tmp_path):
        with pytest.raises(ValueError, match="interval must be positive"):
            run_top(str(_spooled(tmp_path).root), interval=0)


# --------------------------------------------------------------------- #
# CLI surfaces
# --------------------------------------------------------------------- #
def _traced_run(tmp_path):
    """A tiny traced sweep through the real CLI; returns the telemetry dir."""
    telemetry_dir = tmp_path / "telemetry"
    argv = ["sweep", "edge-meg", "--nodes", "12", "--trials", "2", "--seed", "1",
            "--results-dir", str(tmp_path / "store"),
            "--telemetry", str(telemetry_dir)]
    with tracectx.attach_trace("cli-trace-0001"):
        assert main(argv) == 0
    return telemetry_dir


class TestObservabilityCli:
    def test_telemetry_trace_lists_and_renders(self, tmp_path, capsys):
        telemetry_dir = _traced_run(tmp_path)
        capsys.readouterr()
        assert main(["telemetry", "trace", "--telemetry", str(telemetry_dir)]) == 0
        listing = capsys.readouterr().out
        assert "cli-trace-0001" in listing

        json_path = tmp_path / "trace.json"
        assert main(["telemetry", "trace", "cli-trace-0001",
                     "--telemetry", str(telemetry_dir),
                     "--json", str(json_path)]) == 0
        out = capsys.readouterr().out
        assert "trace cli-trace-0001" in out
        summary = json.loads(json_path.read_text())
        assert summary["spans"] >= 1
        assert summary["critical_path"]

    def test_telemetry_trace_unknown_id(self, tmp_path, capsys):
        telemetry_dir = _traced_run(tmp_path)
        capsys.readouterr()
        assert main(["telemetry", "trace", "feedfeedfeedfeed",
                     "--telemetry", str(telemetry_dir)]) == 1
        assert "no events for trace" in capsys.readouterr().err

    def test_telemetry_export_with_checkpoint(self, tmp_path, capsys):
        telemetry_dir = _traced_run(tmp_path)
        capsys.readouterr()
        checkpoint = tmp_path / "export.ckpt"
        output = tmp_path / "metrics.prom"
        assert main(["telemetry", "export", "--telemetry", str(telemetry_dir),
                     "--check", "--checkpoint", str(checkpoint),
                     "--output", str(output)]) == 0
        text = output.read_text()
        assert validate_exposition(text) > 0
        assert "repro_traces_total 1" in text
        assert json.loads(checkpoint.read_text())["offsets"]

    def test_telemetry_export_missing_directory(self, tmp_path, capsys):
        assert main(["telemetry", "export",
                     "--telemetry", str(tmp_path / "nope")]) == 2
        assert "telemetry" in capsys.readouterr().err

    def test_fleet_top_once(self, tmp_path, capsys):
        spool = _spooled(tmp_path)
        assert main(["fleet", "top", str(spool.root), "--once"]) == 0
        assert "repro fleet top —" in capsys.readouterr().out

    def test_fleet_top_json_needs_once(self, tmp_path, capsys):
        spool = _spooled(tmp_path)
        assert main(["fleet", "top", str(spool.root), "--json"]) == 2
        assert "--json" in capsys.readouterr().err
        assert main(["fleet", "top", str(spool.root), "--once", "--json"]) == 0
        frame = json.loads(capsys.readouterr().out)
        assert frame["counts"]["total"] == 3

    def test_fleet_top_missing_spool(self, tmp_path, capsys):
        assert main(["fleet", "top", str(tmp_path / "nope"), "--once"]) == 2
        assert "spool" in capsys.readouterr().err

    def test_report_surfaces_skipped_lines(self, tmp_path, capsys):
        telemetry_dir = _traced_run(tmp_path)
        _append(next(iter(telemetry_dir.glob("events-*.jsonl"))),
                ["{corrupt line"])
        capsys.readouterr()
        json_path = tmp_path / "report.json"
        assert main(["telemetry", "report", str(telemetry_dir),
                     "--json", str(json_path)]) == 0
        out = capsys.readouterr().out
        assert "skipped 1 corrupt/truncated line(s)" in out
        assert json.loads(json_path.read_text())["skipped_lines"] == 1


# --------------------------------------------------------------------- #
# invisibility: tracing never changes what the platform computes
# --------------------------------------------------------------------- #
class TestTraceInvisibility:
    def test_store_bytes_identical_with_and_without_tracing(self, tmp_path):
        argv = ["sweep", "edge-meg", "--nodes", "12", "--trials", "3",
                "--seed", "9"]

        def run(tag, traced):
            store = tmp_path / tag
            extra = ["--results-dir", str(store)]
            if traced:
                extra += ["--telemetry", str(tmp_path / f"{tag}-telemetry")]
                with tracectx.attach_trace("invisibility-check"):
                    assert main(argv + extra) == 0
            else:
                assert main(argv + extra) == 0
            return b"".join(
                sorted(path.read_bytes() for path in store.glob("*.jsonl"))
            )

        assert run("plain", traced=False) == run("traced", traced=True)
