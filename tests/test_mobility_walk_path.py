"""Tests for the graph mobility models: RandomWalkMobility, RandomPathModel,
GraphRandomWalkMobility."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.graphs.grid import grid_graph
from repro.graphs.paths import shortest_path_family
from repro.markov.mixing import mixing_time
from repro.mobility.random_path import (
    GraphRandomWalkMobility,
    RandomPathModel,
    random_walk_path_model,
)
from repro.mobility.random_walk import RandomWalkMobility


class TestRandomWalkMobility:
    def test_coordinates_stay_on_grid(self):
        model = RandomWalkMobility(20, grid_side=5, radius=1.0)
        model.reset(0)
        for _ in range(30):
            coords = model.grid_coordinates()
            assert coords.min() >= 0 and coords.max() <= 4
            model.step()

    def test_moves_are_single_hops(self):
        model = RandomWalkMobility(15, grid_side=6, radius=1.0)
        model.reset(1)
        before = model.grid_coordinates()
        model.step()
        after = model.grid_coordinates()
        hop = np.abs(after - before).sum(axis=1)
        assert set(hop.tolist()) <= {1}

    def test_holding_probability_allows_staying(self):
        model = RandomWalkMobility(30, grid_side=6, radius=1.0, holding_probability=0.9)
        model.reset(2)
        before = model.grid_coordinates()
        model.step()
        after = model.grid_coordinates()
        stayed = (before == after).all(axis=1).sum()
        assert stayed > 15  # most agents hold with probability 0.9

    def test_holding_probability_one_rejected(self):
        with pytest.raises(ValueError):
            RandomWalkMobility(5, grid_side=4, radius=1.0, holding_probability=1.0)

    def test_edges_respect_radius(self):
        model = RandomWalkMobility(25, grid_side=5, radius=1.5, spacing=1.0)
        model.reset(3)
        positions = model.positions()
        for i, j in model.current_edges():
            assert np.linalg.norm(positions[i] - positions[j]) <= 1.5 + 1e-9

    def test_spacing_scales_positions(self):
        model = RandomWalkMobility(5, grid_side=4, radius=1.0, spacing=2.0)
        model.reset(4)
        assert model.side_length == 6.0
        positions = model.positions()
        assert np.allclose(positions % 2.0, 0.0)

    def test_stationary_start_prefers_interior(self):
        # Interior points have degree 4, corners 2; with a degree-stationary
        # start the interior is over-represented relative to uniform.
        model = RandomWalkMobility(4000, grid_side=3, radius=1.0, stationary_start=True)
        model.reset(5)
        coords = model.grid_coordinates()
        centre_fraction = ((coords == 1).all(axis=1)).mean()
        # Stationary mass of the centre point of a 3x3 grid is 4/24 = 1/6.
        assert centre_fraction == pytest.approx(1 / 6, abs=0.03)

    def test_uniform_start_option(self):
        model = RandomWalkMobility(2000, grid_side=3, radius=1.0, stationary_start=False)
        model.reset(6)
        coords = model.grid_coordinates()
        centre_fraction = ((coords == 1).all(axis=1)).mean()
        assert centre_fraction == pytest.approx(1 / 9, abs=0.03)

    def test_invalid_grid_side(self):
        with pytest.raises(ValueError):
            RandomWalkMobility(5, grid_side=1, radius=1.0)

    def test_mixing_time_estimate(self):
        model = RandomWalkMobility(5, grid_side=7, radius=1.0)
        assert model.mixing_time_estimate() == 49.0

    def test_step_before_reset_raises(self):
        model = RandomWalkMobility(5, grid_side=4, radius=1.0)
        with pytest.raises(RuntimeError):
            model.step()


class TestRandomPathModel:
    @pytest.fixture
    def grid_family(self):
        return shortest_path_family(grid_graph(3))

    def test_num_states(self, grid_family):
        model = RandomPathModel(10, grid_family)
        assert model.num_states == grid_family.total_states()

    def test_agents_move_along_graph_edges(self, grid_family):
        model = RandomPathModel(12, grid_family)
        model.reset(0)
        graph = grid_family.graph
        previous = model.agent_points()
        for _ in range(15):
            model.step()
            current = model.agent_points()
            for a, b in zip(previous, current):
                assert a == b or graph.has_edge(a, b)
            previous = current

    def test_lazy_agents_can_stay(self, grid_family):
        model = RandomPathModel(40, grid_family, holding_probability=0.8)
        model.reset(1)
        before = model.agent_points()
        model.step()
        after = model.agent_points()
        stayed = sum(1 for a, b in zip(before, after) if a == b)
        assert stayed > 20

    def test_stationary_distribution_uniform_for_reversible(self, grid_family):
        model = RandomPathModel(5, grid_family)
        pi = model.stationary_state_distribution()
        assert np.allclose(pi, 1.0 / model.num_states)

    def test_point_occupancy_sums_to_one(self, grid_family):
        model = RandomPathModel(5, grid_family)
        occupancy = model.point_occupancy_distribution()
        assert sum(occupancy.values()) == pytest.approx(1.0)
        assert set(occupancy) == set(grid_family.graph.nodes())

    def test_edge_probability_positive_and_eta_at_least_one(self, grid_family):
        model = RandomPathModel(5, grid_family)
        assert model.edge_probability() > 0
        assert model.eta() >= 1.0 - 1e-9

    def test_to_markov_chain_rows_stochastic(self):
        family = shortest_path_family(grid_graph(2))
        model = RandomPathModel(4, family)
        chain = model.to_markov_chain()
        assert chain.num_states == model.num_states
        assert np.allclose(chain.transition_matrix.sum(axis=1), 1.0)

    def test_to_markov_chain_stationary_uniform(self):
        family = shortest_path_family(grid_graph(2))
        model = RandomPathModel(4, family)
        chain = model.to_markov_chain()
        assert np.allclose(
            chain.stationary_distribution(), 1.0 / model.num_states, atol=1e-8
        )

    def test_colocation_edges(self, grid_family):
        model = RandomPathModel(15, grid_family, radius_hops=0)
        model.reset(3)
        points = model.agent_points()
        expected = {
            (i, j)
            for i in range(15)
            for j in range(i + 1, 15)
            if points[i] == points[j]
        }
        assert set(model.current_edges()) == expected

    def test_radius_one_includes_adjacent_points(self, grid_family):
        model = RandomPathModel(15, grid_family, radius_hops=1)
        model.reset(3)
        points = model.agent_points()
        graph = grid_family.graph
        expected = {
            (i, j)
            for i in range(15)
            for j in range(i + 1, 15)
            if points[i] == points[j] or graph.has_edge(points[i], points[j])
        }
        assert set(model.current_edges()) == expected

    def test_invalid_parameters(self, grid_family):
        with pytest.raises(ValueError):
            RandomPathModel(5, grid_family, radius_hops=-1)
        with pytest.raises(ValueError):
            RandomPathModel(5, grid_family, holding_probability=1.0)

    def test_non_stationary_start_begins_paths(self, grid_family):
        model = RandomPathModel(10, grid_family, stationary_start=False)
        model.reset(2)
        # Every agent occupies the second point of some feasible path.
        for state_index in model._agent_states:  # noqa: SLF001 - test introspection
            path_index, position = model._states[state_index]
            assert position == 1


class TestGraphRandomWalkMobility:
    def test_agents_stay_on_graph(self):
        graph = grid_graph(4)
        model = GraphRandomWalkMobility(20, graph, holding_probability=0.5)
        model.reset(0)
        for _ in range(20):
            assert all(p in graph for p in model.agent_points())
            model.step()

    def test_moves_are_edges_or_holds(self):
        graph = grid_graph(4)
        model = GraphRandomWalkMobility(15, graph, holding_probability=0.5)
        model.reset(1)
        previous = model.agent_points()
        model.step()
        current = model.agent_points()
        for a, b in zip(previous, current):
            assert a == b or graph.has_edge(a, b)

    def test_colocation_edges(self):
        graph = grid_graph(3)
        model = GraphRandomWalkMobility(20, graph, holding_probability=0.5)
        model.reset(2)
        points = model.agent_points()
        expected = {
            (i, j)
            for i in range(20)
            for j in range(i + 1, 20)
            if points[i] == points[j]
        }
        assert set(model.current_edges()) == expected

    def test_to_markov_chain_is_lazy_walk(self):
        graph = grid_graph(3)
        model = GraphRandomWalkMobility(5, graph, holding_probability=0.5)
        chain = model.to_markov_chain()
        assert chain.num_states == 9
        assert chain.transition_probability((1, 1), (1, 1)) == pytest.approx(0.5)

    def test_requires_connected_graph(self):
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            GraphRandomWalkMobility(5, graph)

    def test_requires_two_points(self):
        graph = nx.Graph()
        graph.add_node(0)
        with pytest.raises(ValueError):
            GraphRandomWalkMobility(5, graph)

    def test_mixing_time_decreases_on_augmented_grid(self):
        from repro.graphs.grid import augmented_grid_graph

        plain = GraphRandomWalkMobility(5, augmented_grid_graph(5, 1), holding_probability=0.5)
        augmented = GraphRandomWalkMobility(5, augmented_grid_graph(5, 3), holding_probability=0.5)
        assert mixing_time(augmented.to_markov_chain()) < mixing_time(plain.to_markov_chain())

    def test_random_walk_path_model_equivalence_of_structure(self):
        # The edge-path random-path model and the direct walk have the same
        # stationary point occupancy (proportional to degree).
        graph = grid_graph(3)
        path_model = random_walk_path_model(10, graph)
        occupancy = path_model.point_occupancy_distribution()
        degrees = dict(graph.degree())
        total_degree = sum(degrees.values())
        for point, probability in occupancy.items():
            assert probability == pytest.approx(degrees[point] / total_degree)
