"""Tests for the engine's executor choice: process pool vs thread pool.

The scheduling contract extends to the executor kind: per-trial seeds are
spawned before scheduling and each worker chunk runs on its own model copy,
so serial, process-pool and thread-pool runs of one spec produce
bit-identical samples.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.engine import EXECUTORS, Engine, TrialSpec
from repro.meg.edge_meg import EdgeMEG


def _spec(num_trials: int = 8) -> TrialSpec:
    return TrialSpec(
        factory=EdgeMEG,
        args=(30,),
        kwargs={"p": 0.05, "q": 0.5},
        num_trials=num_trials,
        seed=42,
        label="executor-test",
    )


class TestThreadExecutor:
    def test_executors_registered(self):
        assert EXECUTORS == ("process", "thread")

    def test_thread_samples_match_serial(self):
        serial = Engine(workers=1).run(_spec())
        threaded = Engine(workers=4, executor="thread").run(_spec())
        assert threaded.flooding_times == serial.flooding_times

    def test_thread_samples_match_process(self):
        process = Engine(workers=2, executor="process").run(_spec())
        threaded = Engine(workers=2, executor="thread").run(_spec())
        assert threaded.flooding_times == process.flooding_times

    def test_thread_shard_matches_unsharded_slice(self):
        from repro.engine import ShardSpec

        full = Engine(workers=1).run(_spec())
        shard = Engine(workers=3, executor="thread").run_shard(
            ShardSpec(_spec(), index=1, count=3)
        )
        assert shard.flooding_times == full.flooding_times[1::3]

    def test_more_threads_than_trials(self):
        serial = Engine(workers=1).run(_spec(num_trials=2))
        threaded = Engine(workers=8, executor="thread").run(_spec(num_trials=2))
        assert threaded.flooding_times == serial.flooding_times

    def test_invalid_executor_rejected(self):
        with pytest.raises(ValueError, match="executor must be one of"):
            Engine(executor="rocket")

    def test_wrapped_model_is_not_shared_across_thread_chunks(self):
        # A spec wrapping a prototype instance must not let thread chunks
        # race on that one instance: the pickle round-trip gives each chunk
        # its own copy, and the samples still match the serial run.
        model = EdgeMEG(30, p=0.05, q=0.5)
        spec = TrialSpec.from_model(model, num_trials=8, seed=11)
        serial = Engine(workers=1).run(spec)
        threaded = Engine(workers=4, executor="thread").run(spec)
        assert threaded.flooding_times == serial.flooding_times


class TestExecutorCli:
    ARGS = ["flood", "edge-meg", "--nodes", "40", "--p", "0.05", "--q", "0.5",
            "--trials", "4", "--seed", "1"]

    def test_executor_flag_does_not_change_samples(self, tmp_path, capsys):
        runs = {}
        for name, extra in (
            ("process", ["--workers", "2", "--executor", "process"]),
            ("thread", ["--workers", "2", "--executor", "thread"]),
        ):
            json_path = tmp_path / f"{name}.json"
            assert main(self.ARGS + extra + ["--json", str(json_path)]) == 0
            runs[name] = json.loads(json_path.read_text())["samples"]
        assert runs["process"] == runs["thread"]

    def test_invalid_executor_rejected(self):
        with pytest.raises(SystemExit):
            main(self.ARGS + ["--executor", "fiber"])
