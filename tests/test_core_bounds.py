"""Tests for repro.core.bounds (the paper's bound formulas)."""

from __future__ import annotations

import math

import pytest

from repro.core.bounds import (
    classic_edge_meg_bound,
    corollary4_bound,
    corollary5_bound,
    corollary6_bound,
    edge_meg_general_bound,
    sparse_waypoint_bound,
    theorem1_bound,
    theorem3_bound,
    waypoint_flooding_bound,
)
from repro.util.mathutils import logn_factor


class TestTheorem1Bound:
    def test_formula(self):
        n, epoch, alpha, beta = 64, 10.0, 1.0 / 64, 2.0
        expected = epoch * (1.0 / (n * alpha) + beta) ** 2 * logn_factor(n, 2)
        assert theorem1_bound(n, epoch, alpha, beta) == pytest.approx(expected)

    def test_monotone_in_epoch_length(self):
        assert theorem1_bound(100, 20, 0.01, 1.0) > theorem1_bound(100, 10, 0.01, 1.0)

    def test_monotone_in_beta(self):
        assert theorem1_bound(100, 10, 0.01, 5.0) > theorem1_bound(100, 10, 0.01, 1.0)

    def test_decreasing_in_alpha(self):
        assert theorem1_bound(100, 10, 0.001, 1.0) > theorem1_bound(100, 10, 0.1, 1.0)

    def test_log_squared_scaling_when_dense(self):
        # With alpha = 1 and beta = 1, the bound is M * (1 + 1/n)^2 * log^2 n.
        assert theorem1_bound(256, 1.0, 1.0, 1.0) == pytest.approx(
            (1.0 + 1.0 / 256) ** 2 * 8**2
        )

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            theorem1_bound(0, 1.0, 0.1, 1.0)
        with pytest.raises(ValueError):
            theorem1_bound(10, 0.0, 0.1, 1.0)
        with pytest.raises(ValueError):
            theorem1_bound(10, 1.0, 0.0, 1.0)
        with pytest.raises(TypeError):
            theorem1_bound(10.5, 1.0, 0.1, 1.0)


class TestTheorem3Bound:
    def test_formula(self):
        n, t_mix, p_nm, eta = 128, 5.0, 1.0 / 16, 2.0
        expected = t_mix * (1.0 / (n * p_nm) + eta) ** 2 * logn_factor(n, 3)
        assert theorem3_bound(n, t_mix, p_nm, eta) == pytest.approx(expected)

    def test_log_cubed_factor(self):
        # Theorem 3 carries an extra log factor compared with Theorem 1.
        t1 = theorem1_bound(256, 1.0, 1.0, 1.0)
        t3 = theorem3_bound(256, 1.0, 1.0, 1.0)
        assert t3 == pytest.approx(t1 * logn_factor(256, 1))

    def test_invalid(self):
        with pytest.raises(ValueError):
            theorem3_bound(10, 1.0, 0.0, 1.0)


class TestCorollary4Bound:
    def test_formula(self):
        n, t_mix, delta, lam, volume, radius = 100, 10.0, 2.0, 0.5, 100.0, 1.0
        density = delta**2 * volume / (lam * n * radius**2)
        expected = t_mix * (density + delta**6 / lam**2) ** 2 * logn_factor(n, 3)
        assert corollary4_bound(n, t_mix, delta, lam, volume, radius) == pytest.approx(expected)

    def test_dimension_generalises(self):
        three_d = corollary4_bound(100, 10.0, 2.0, 0.5, 1000.0, 2.0, dimension=3)
        two_d = corollary4_bound(100, 10.0, 2.0, 0.5, 1000.0, 2.0, dimension=2)
        assert three_d < two_d  # r^3 > r^2 for r = 2 shrinks the density term

    def test_larger_radius_smaller_bound(self):
        small_r = corollary4_bound(100, 10.0, 2.0, 0.5, 100.0, 0.5)
        large_r = corollary4_bound(100, 10.0, 2.0, 0.5, 100.0, 2.0)
        assert large_r < small_r

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            corollary4_bound(10, 1.0, 1.0, 0.5, 1.0, 1.0, dimension=0)


class TestWaypointBound:
    def test_formula(self):
        n, side, radius, v = 100, 10.0, 1.0, 2.0
        expected = (side / v) * (side**2 / (n * radius**2) + 1.0) ** 2 * logn_factor(n, 3)
        assert waypoint_flooding_bound(n, side, radius, v) == pytest.approx(expected)

    def test_inverse_in_speed(self):
        slow = waypoint_flooding_bound(100, 10.0, 1.0, 1.0)
        fast = waypoint_flooding_bound(100, 10.0, 1.0, 4.0)
        assert fast == pytest.approx(slow / 4.0)

    def test_sparse_regime_scaling(self):
        # With L = sqrt(n) and r = v = 1, the bound scales ~ sqrt(n) polylog n.
        values = []
        for n in (64, 256, 1024):
            values.append(waypoint_flooding_bound(n, math.sqrt(n), 1.0, 1.0))
        ratio_1 = values[1] / values[0]
        ratio_2 = values[2] / values[1]
        # Growth is roughly a factor 2-4 per 4x increase of n (sqrt * polylog).
        assert 1.5 < ratio_1 < 6.0
        assert 1.5 < ratio_2 < 6.0

    def test_sparse_waypoint_helper(self):
        assert sparse_waypoint_bound(256, 2.0) == pytest.approx(
            (16.0 / 2.0) * logn_factor(256, 3)
        )


class TestCorollary5And6:
    def test_corollary5_formula(self):
        n, t_mix, num_points, delta = 50, 6.0, 25, 1.5
        expected = t_mix * (25 / 50 + 1.5**3) ** 2 * logn_factor(50, 3)
        assert corollary5_bound(n, t_mix, num_points, delta) == pytest.approx(expected)

    def test_corollary6_formula(self):
        n, t_mix, num_points, delta = 50, 6.0, 25, 1.5
        expected = t_mix * (1.5**2 * 25 / 50 + 1.5**7) ** 2 * logn_factor(50, 3)
        assert corollary6_bound(n, t_mix, num_points, delta) == pytest.approx(expected)

    def test_corollary6_dominates_corollary5_for_same_delta(self):
        # The random-walk specialisation pays higher powers of delta.
        assert corollary6_bound(50, 6.0, 25, 1.5) >= corollary5_bound(50, 6.0, 25, 1.5)

    def test_more_agents_reduce_point_term(self):
        few = corollary5_bound(10, 6.0, 100, 1.0)
        many = corollary5_bound(1000, 6.0, 100, 1.0)
        assert many < few

    def test_invalid_points(self):
        with pytest.raises(ValueError):
            corollary5_bound(10, 1.0, 0, 1.0)
        with pytest.raises(ValueError):
            corollary6_bound(10, 1.0, 0, 1.0)


class TestEdgeMegBounds:
    def test_general_formula(self):
        n, t_mix, alpha = 100, 4.0, 0.02
        expected = t_mix * (1.0 / (n * alpha) + 1.0) ** 2 * logn_factor(n, 2)
        assert edge_meg_general_bound(n, t_mix, alpha) == pytest.approx(expected)

    def test_classic_instantiation(self):
        n, p, q = 100, 0.01, 0.5
        expected = edge_meg_general_bound(n, 1.0 / (p + q), p / (p + q))
        assert classic_edge_meg_bound(n, p, q) == pytest.approx(expected)

    def test_classic_bound_decreasing_in_p(self):
        assert classic_edge_meg_bound(100, 0.001, 0.5) > classic_edge_meg_bound(
            100, 0.1, 0.5
        )

    def test_invalid(self):
        with pytest.raises(ValueError):
            edge_meg_general_bound(10, 1.0, 0.0)
        with pytest.raises(ValueError):
            classic_edge_meg_bound(10, 0.0, 0.5)
