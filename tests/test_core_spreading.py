"""Tests for repro.core.spreading (gossip and SI epidemic)."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.core.flooding import flood
from repro.core.spreading import SpreadingResult, gossip_spread, si_epidemic
from repro.meg.base import StaticGraphProcess
from repro.meg.edge_meg import EdgeMEG


class TestGossipArguments:
    def test_requires_exactly_one_mechanism(self, small_edge_meg):
        with pytest.raises(ValueError):
            gossip_spread(small_edge_meg)
        with pytest.raises(ValueError):
            gossip_spread(small_edge_meg, transmission_probability=0.5, fanout=1)

    def test_invalid_probability(self, small_edge_meg):
        with pytest.raises(ValueError):
            gossip_spread(small_edge_meg, transmission_probability=1.5)

    def test_invalid_fanout(self, small_edge_meg):
        with pytest.raises(ValueError):
            gossip_spread(small_edge_meg, fanout=0)

    def test_invalid_source(self, small_edge_meg):
        with pytest.raises(ValueError):
            gossip_spread(small_edge_meg, source=999, transmission_probability=0.5)

    def test_si_invalid_probability(self, small_edge_meg):
        with pytest.raises(ValueError):
            si_epidemic(small_edge_meg, infection_probability=-0.1)


class TestGossipBehaviour:
    def test_probability_one_matches_flooding(self):
        process = StaticGraphProcess(nx.path_graph(7))
        flood_result = flood(process, source=0)
        gossip_result = gossip_spread(process, source=0, transmission_probability=1.0, rng=0)
        assert gossip_result.completion_time == flood_result.flooding_time

    def test_probability_zero_never_spreads(self, small_edge_meg):
        result = gossip_spread(
            small_edge_meg, transmission_probability=0.0, rng=0, max_steps=30
        )
        assert not result.completed
        assert result.final_informed == 1

    def test_gossip_completes_on_dynamic_graph(self, small_edge_meg):
        result = gossip_spread(small_edge_meg, transmission_probability=0.5, rng=1)
        assert result.completed
        assert result.final_informed == small_edge_meg.num_nodes

    def test_gossip_slower_than_flooding_on_average(self):
        model = EdgeMEG(60, p=0.05, q=0.5)
        flood_times = [flood(model, rng=seed).flooding_time for seed in range(8)]
        gossip_times = [
            gossip_spread(model, transmission_probability=0.3, rng=seed).completion_time
            for seed in range(8)
        ]
        assert np.mean(gossip_times) >= np.mean(flood_times)

    def test_fanout_one_completes(self, small_edge_meg):
        result = gossip_spread(small_edge_meg, fanout=1, rng=2)
        assert result.completed

    def test_fanout_limits_new_informed_per_step(self):
        # With fanout 1 on a static star, the centre informs one leaf per step.
        process = StaticGraphProcess(nx.star_graph(6))
        result = gossip_spread(process, source=0, fanout=1, rng=3)
        assert result.completion_time == 6

    def test_large_fanout_equals_flooding(self):
        process = StaticGraphProcess(nx.complete_graph(9))
        result = gossip_spread(process, source=0, fanout=100, rng=0)
        assert result.completion_time == 1

    def test_history_monotone(self, small_edge_meg):
        result = gossip_spread(small_edge_meg, transmission_probability=0.4, rng=4)
        history = result.informed_history
        assert all(a <= b for a, b in zip(history, history[1:]))

    def test_single_node_graph(self):
        graph = nx.Graph()
        graph.add_node(0)
        result = gossip_spread(StaticGraphProcess(graph), transmission_probability=0.5)
        assert result.completion_time == 0

    def test_reproducible(self, small_edge_meg):
        a = gossip_spread(small_edge_meg, transmission_probability=0.5, rng=9)
        b = gossip_spread(small_edge_meg, transmission_probability=0.5, rng=9)
        assert a.completion_time == b.completion_time
        assert a.informed_history == b.informed_history


class TestSiEpidemic:
    def test_probability_one_is_flooding(self):
        process = StaticGraphProcess(nx.cycle_graph(8))
        flood_result = flood(process, source=0)
        si_result = si_epidemic(process, source=0, infection_probability=1.0, rng=0)
        assert si_result.completion_time == flood_result.flooding_time

    def test_epidemic_completes(self, small_edge_meg):
        result = si_epidemic(small_edge_meg, infection_probability=0.6, rng=5)
        assert result.completed

    def test_lower_probability_is_slower(self):
        model = EdgeMEG(60, p=0.08, q=0.5)
        fast = [
            si_epidemic(model, infection_probability=0.9, rng=s).completion_time
            for s in range(6)
        ]
        slow = [
            si_epidemic(model, infection_probability=0.2, rng=s).completion_time
            for s in range(6)
        ]
        assert np.mean(slow) >= np.mean(fast)


class TestSpreadingResult:
    def test_time_to_fraction(self):
        result = SpreadingResult(0, 10, (1, 4, 8, 10), 3)
        assert result.time_to_fraction(0.5) == 2
        assert result.time_to_fraction(1.0) == 3

    def test_time_to_fraction_invalid(self):
        result = SpreadingResult(0, 10, (1, 10), 1)
        with pytest.raises(ValueError):
            result.time_to_fraction(2.0)

    def test_completed_flag(self):
        assert SpreadingResult(0, 5, (1, 5), 1).completed
        assert not SpreadingResult(0, 5, (1, 3), None).completed
