"""Tests for the persistent result store and engine-level caching."""

from __future__ import annotations

import json

import numpy as np

from repro.engine import Engine, ResultStore, TrialSpec, jsonify
from repro.experiments.runner import measure_flooding_sweep
from repro.meg.edge_meg import EdgeMEG


def make_sweep_model(num_nodes: int) -> EdgeMEG:
    """Module-level sweep factory with a stable cache identity."""
    return EdgeMEG(num_nodes, p=0.1, q=0.3)


class TestJsonify:
    def test_numpy_scalars_and_arrays(self):
        payload = jsonify(
            {
                "i": np.int64(3),
                "f": np.float64(1.5),
                "b": np.bool_(True),
                "a": np.arange(3),
                "nested": [np.int32(1), (np.float32(2.0),)],
            }
        )
        assert json.dumps(payload)  # round-trips through the json module
        assert payload["i"] == 3 and payload["a"] == [0, 1, 2]

    def test_compute_key_ignores_dict_order(self):
        a = ResultStore.compute_key({"x": 1, "y": [2, 3]})
        b = ResultStore.compute_key({"y": [2, 3], "x": 1})
        assert a == b

    def test_compute_key_sensitive_to_values(self):
        assert ResultStore.compute_key({"x": 1}) != ResultStore.compute_key({"x": 2})


class TestResultStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path)
        key = ResultStore.compute_key({"model": "test"})
        assert store.get(key) is None
        assert key not in store
        store.put(key, {"flooding_times": [1, 2, 3]})
        assert key in store
        assert len(store) == 1
        assert store.get(key) == {"flooding_times": [1, 2, 3]}

    def test_persistence_across_instances(self, tmp_path):
        key = ResultStore.compute_key({"model": "persist"})
        ResultStore(tmp_path).put(key, {"value": 42})
        reloaded = ResultStore(tmp_path)
        assert reloaded.get(key) == {"value": 42}
        assert list(reloaded.keys()) == [key]

    def test_corrupt_lines_are_skipped(self, tmp_path):
        store = ResultStore(tmp_path)
        key = ResultStore.compute_key({"model": "ok"})
        store.put(key, {"value": 1})
        with open(store.path, "a", encoding="utf-8") as handle:
            handle.write('{"truncated mid-append\n')
        reloaded = ResultStore(tmp_path)
        assert reloaded.get(key) == {"value": 1}
        assert len(reloaded) == 1

    def test_last_write_wins(self, tmp_path):
        store = ResultStore(tmp_path)
        key = ResultStore.compute_key({"model": "dup"})
        store.put(key, {"value": 1})
        store.put(key, {"value": 2})
        assert ResultStore(tmp_path).get(key) == {"value": 2}
        # Both records remain in the append-only file.
        with open(store.path, "r", encoding="utf-8") as handle:
            assert len(handle.readlines()) == 2

    def test_index_built_lazily_on_first_lookup(self, tmp_path):
        key = ResultStore.compute_key({"model": "lazy"})
        ResultStore(tmp_path).put(key, {"value": 1})
        store = ResultStore(tmp_path)
        # Construction does not scan the file; the first lookup does, once.
        assert store._index is None
        assert store.get(key) == {"value": 1}
        assert store._index is not None

    def test_compact_drops_superseded_and_corrupt_lines(self, tmp_path):
        store = ResultStore(tmp_path)
        key_a = ResultStore.compute_key({"model": "a"})
        key_b = ResultStore.compute_key({"model": "b"})
        store.put(key_a, {"value": 1})
        store.put(key_a, {"value": 2})  # supersedes the first write
        store.put(key_b, {"value": 3})
        with open(store.path, "a", encoding="utf-8") as handle:
            handle.write('{"truncated mid-append\n')
        reloaded = ResultStore(tmp_path)
        assert reloaded.compact() == 2  # one duplicate + one corrupt line
        with open(reloaded.path, "r", encoding="utf-8") as handle:
            assert len(handle.readlines()) == 2
        fresh = ResultStore(tmp_path)
        assert fresh.get(key_a) == {"value": 2}
        assert fresh.get(key_b) == {"value": 3}

    def test_compact_idempotent_and_empty_store(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.compact() == 0
        key = ResultStore.compute_key({"model": "one"})
        store.put(key, {"value": 1})
        assert store.compact() == 0
        assert ResultStore(tmp_path).get(key) == {"value": 1}


class TestEngineCaching:
    def test_cache_hit_returns_identical_samples(self, tmp_path):
        store = ResultStore(tmp_path)
        engine = Engine(store=store)
        spec = TrialSpec.from_model(EdgeMEG(20, p=0.1, q=0.3), num_trials=5, seed=2)
        first = engine.run(spec)
        second = engine.run(spec)
        assert not first.from_cache
        assert second.from_cache
        assert first.flooding_times == second.flooding_times
        assert len(store) == 1

    def test_cache_miss_on_different_seed(self, tmp_path):
        engine = Engine(store=ResultStore(tmp_path))
        model = EdgeMEG(20, p=0.1, q=0.3)
        engine.run(TrialSpec.from_model(model, num_trials=5, seed=2))
        other = engine.run(TrialSpec.from_model(model, num_trials=5, seed=3))
        assert not other.from_cache

    def test_cache_miss_on_different_model_parameters(self, tmp_path):
        engine = Engine(store=ResultStore(tmp_path))
        engine.run(TrialSpec.from_model(EdgeMEG(20, p=0.1, q=0.3), num_trials=5, seed=2))
        other = engine.run(
            TrialSpec.from_model(EdgeMEG(20, p=0.2, q=0.3), num_trials=5, seed=2)
        )
        assert not other.from_cache
        assert len(engine.store) == 2

    def test_cache_shared_across_engine_instances(self, tmp_path):
        spec_args = dict(num_trials=5, seed=2)
        first = Engine(store=ResultStore(tmp_path)).run(
            TrialSpec.from_model(EdgeMEG(20, p=0.1, q=0.3), **spec_args)
        )
        second = Engine(store=ResultStore(tmp_path)).run(
            TrialSpec.from_model(EdgeMEG(20, p=0.1, q=0.3), **spec_args)
        )
        assert second.from_cache
        assert second.flooding_times == first.flooding_times

    def test_no_store_never_caches(self):
        engine = Engine()
        spec = TrialSpec.from_model(EdgeMEG(20, p=0.1, q=0.3), num_trials=3, seed=0)
        assert not engine.run(spec).from_cache
        assert not engine.run(spec).from_cache


class TestSweepCaching:
    def test_sweep_served_from_cache_on_rerun(self, tmp_path):
        engine = Engine(store=ResultStore(tmp_path))
        first = measure_flooding_sweep(
            make_sweep_model, [12, 16], num_trials=3, rng=7, engine=engine
        )
        second = measure_flooding_sweep(
            make_sweep_model, [12, 16], num_trials=3, rng=7, engine=engine
        )
        assert [m.from_cache for m in first] == [False, False]
        assert [m.from_cache for m in second] == [True, True]
        assert [m.samples for m in first] == [m.samples for m in second]
        assert len(engine.store) == 2

    def test_sweep_point_values_keyed_independently(self, tmp_path):
        engine = Engine(store=ResultStore(tmp_path))
        measure_flooding_sweep(make_sweep_model, [12], num_trials=3, rng=7, engine=engine)
        extended = measure_flooding_sweep(
            make_sweep_model, [12, 16], num_trials=3, rng=7, engine=engine
        )
        # The first point is re-served from cache, the new point is computed.
        assert extended[0].from_cache
        assert not extended[1].from_cache
