"""Tests for snapshot recording/replay and chunked source batches."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.flooding import batch_source_flooding_times, flood, flood_sources_set
from repro.engine import (
    Engine,
    SnapshotReplay,
    TrialSpec,
    flood_sources_batch,
    flood_sparse,
    flood_vectorized,
)
from repro.graphs.grid import augmented_grid_graph, grid_graph
from repro.markov.builders import random_walk_on_graph
from repro.meg.edge_meg import EdgeMEG
from repro.meg.node_meg import NodeMEG
from repro.mobility.random_path import GraphRandomWalkMobility
from repro.mobility.random_waypoint import RandomWaypoint


def _family_model(family: str):
    if family == "edge-meg":
        return EdgeMEG(24, p=0.12, q=0.4)
    if family == "node-meg":
        chain = random_walk_on_graph(grid_graph(3)).lazy(0.2)
        return NodeMEG(
            20,
            chain,
            lambda a, b: abs(a[0] - b[0]) + abs(a[1] - b[1]) <= 1,
        )
    if family == "grid":
        return GraphRandomWalkMobility(18, augmented_grid_graph(4, 2), radius_hops=1)
    return RandomWaypoint(18, side=4.0, radius=1.2, v_min=1.0)


FAMILIES = ["edge-meg", "node-meg", "grid", "mobility"]


class TestSnapshotReplay:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_flood_over_replay_matches_model(self, family):
        model = _family_model(family)
        direct = flood(model, rng=3)
        replay = SnapshotReplay(_family_model(family))
        via_replay = flood(replay, rng=3)
        assert via_replay == direct

    @pytest.mark.parametrize("family", FAMILIES)
    def test_rewind_reproduces_first_pass(self, family):
        replay = SnapshotReplay(_family_model(family))
        first = flood_vectorized(replay, source=0, rng=5)
        replay.rewind()
        second = flood_vectorized(replay, source=0, reset=False)
        assert second == first

    def test_all_kernels_agree_on_replay(self):
        replay = SnapshotReplay(EdgeMEG(24, p=0.12, q=0.4))
        reference = flood(replay, rng=2)
        for kernel in (flood_vectorized, flood_sparse):
            replay.rewind()
            assert kernel(replay, reset=False) == reference

    def test_replay_does_not_restep_the_model(self):
        class CountingEdgeMEG(EdgeMEG):
            steps = 0

            def step(self):
                CountingEdgeMEG.steps += 1
                super().step()

        replay = SnapshotReplay(CountingEdgeMEG(24, p=0.12, q=0.4))
        flood_vectorized(replay, rng=1)
        stepped = CountingEdgeMEG.steps
        replay.rewind()
        flood_vectorized(replay, reset=False)
        assert CountingEdgeMEG.steps == stepped

    def test_reset_starts_a_fresh_recording(self):
        replay = SnapshotReplay(EdgeMEG(24, p=0.12, q=0.4))
        first = flood_vectorized(replay, rng=1)
        assert replay.recorded_steps > 1
        second = flood_vectorized(replay, rng=9)
        direct = flood_vectorized(EdgeMEG(24, p=0.12, q=0.4), rng=9)
        assert second == direct
        assert first == flood_vectorized(EdgeMEG(24, p=0.12, q=0.4), rng=1)

    def test_neighbors_of_set_matches_model(self):
        model = EdgeMEG(20, p=0.2, q=0.4)
        model.reset(4)
        replay = SnapshotReplay(model)
        for nodes in ({0}, {1, 5, 7}, set(range(20))):
            assert replay.neighbors_of_set(nodes) == model.neighbors_of_set(nodes)
        assert replay.neighbors_of_set(set()) == set()

    def test_requires_dynamic_graph(self):
        with pytest.raises(TypeError):
            SnapshotReplay("not a model")

    def test_cache_token_delegates(self):
        model = EdgeMEG(20, p=0.2, q=0.4)
        assert SnapshotReplay(model).cache_token() == model.cache_token()


class TestChunkedSourceBatches:
    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("chunk_size", [1, 3, 7])
    def test_chunked_equals_unchunked(self, family, chunk_size):
        sources = list(range(_family_model(family).num_nodes))
        plain = flood_sources_batch(_family_model(family), sources, rng=3)
        chunked = flood_sources_batch(
            _family_model(family), sources, rng=3, chunk_size=chunk_size
        )
        assert chunked == plain

    def test_chunked_matches_set_reference(self):
        sources = list(range(24))
        via_set = flood_sources_set(EdgeMEG(24, p=0.12, q=0.4), sources, rng=6)
        chunked = flood_sources_batch(
            EdgeMEG(24, p=0.12, q=0.4), sources, rng=6, chunk_size=5
        )
        assert chunked == via_set

    def test_chunk_larger_than_batch_is_single_pass(self):
        sources = [0, 1, 2]
        plain = flood_sources_batch(EdgeMEG(20, p=0.2, q=0.4), sources, rng=1)
        chunked = flood_sources_batch(
            EdgeMEG(20, p=0.2, q=0.4), sources, rng=1, chunk_size=10
        )
        assert chunked == plain

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            flood_sources_batch(EdgeMEG(20, p=0.2, q=0.4), [0, 1], rng=0, chunk_size=0)

    def test_chunked_mid_playback_replay_keeps_window(self):
        # A replay handed over mid-playback (reset=False, cursor > 0) must
        # flood every chunk from the *current* position, not from frame 0.
        def advanced_replay() -> SnapshotReplay:
            replay = SnapshotReplay(EdgeMEG(20, p=0.2, q=0.4))
            replay.reset(9)
            replay.run(3)
            return replay

        sources = list(range(20))
        plain = flood_sources_batch(advanced_replay(), sources, reset=False)
        chunked = flood_sources_batch(
            advanced_replay(), sources, reset=False, chunk_size=6
        )
        assert chunked == plain

    def test_rewind_validates_target_frame(self):
        replay = SnapshotReplay(EdgeMEG(20, p=0.2, q=0.4))
        replay.reset(1)
        replay.run(2)
        assert replay.cursor == 2
        replay.rewind(1)
        assert replay.cursor == 1
        with pytest.raises(ValueError):
            replay.rewind(5)
        with pytest.raises(ValueError):
            replay.rewind(-1)

    def test_sparse_backend_chunked(self):
        sources = list(range(20))
        plain = flood_sources_batch(
            EdgeMEG(20, p=0.2, q=0.4), sources, rng=2, backend="sparse"
        )
        chunked = flood_sources_batch(
            EdgeMEG(20, p=0.2, q=0.4), sources, rng=2, backend="sparse", chunk_size=6
        )
        assert chunked == plain

    def test_batch_source_flooding_times_chunked(self):
        plain = batch_source_flooding_times(EdgeMEG(20, p=0.2, q=0.4), "all", rng=3)
        chunked = batch_source_flooding_times(
            EdgeMEG(20, p=0.2, q=0.4), "all", rng=3, chunk_size=4
        )
        assert chunked == plain


class TestEngineSourceChunk:
    def _spec(self, **kwargs) -> TrialSpec:
        return TrialSpec.from_model(
            EdgeMEG(24, p=0.12, q=0.4), num_trials=3, seed=8, **kwargs
        )

    def test_source_chunk_keeps_samples_identical(self):
        spec = self._spec(sources="all")
        plain = Engine().run(spec).flooding_times
        chunked = Engine(source_chunk=5).run(spec).flooding_times
        assert chunked == plain

    def test_source_chunk_with_sampled_sources(self):
        spec = self._spec(num_sources=8)
        plain = Engine().run(spec).flooding_times
        chunked = Engine(source_chunk=3).run(spec).flooding_times
        assert chunked == plain

    def test_source_chunk_with_workers(self):
        spec = self._spec(sources="all")
        serial = Engine(source_chunk=5).run(spec).flooding_times
        parallel = Engine(source_chunk=5, workers=2).run(spec).flooding_times
        assert parallel == serial

    def test_invalid_source_chunk_rejected(self):
        with pytest.raises(ValueError):
            Engine(source_chunk=0)

    def test_cache_key_unchanged_by_source_chunk(self, tmp_path):
        from repro.engine import ResultStore

        spec = self._spec(sources="all")
        store = ResultStore(tmp_path)
        first = Engine(store=store).run(spec)
        second = Engine(store=store, source_chunk=4).run(spec)
        assert not first.from_cache
        assert second.from_cache
        assert second.flooding_times == first.flooding_times


def test_replay_reach_mask_matches_adjacency():
    model = EdgeMEG(16, p=0.3, q=0.3)
    model.reset(1)
    replay = SnapshotReplay(model)
    informed = np.zeros(16, dtype=bool)
    informed[[0, 3, 9]] = True
    expected = model.adjacency_matrix()[informed].any(axis=0)
    assert np.array_equal(replay.reach_mask(informed), expected)
