"""Tests for the engine-routed experiments pipeline (repro.experiments.pipeline).

Covers the three contracts the CI experiment fan-out matrix enforces:

* **Golden values** — every E1-E10 small-scale report is bit-compatible with
  the values the pre-pipeline registry produced (captured in
  ``tests/data/experiments_golden_small.json`` before the refactor).
* **Execution invariance** — the same id/scale/seed yields an identical
  report dict across serial, multi-worker, and sharded+merged execution.
* **Store semantics** — shard stores merge byte-identical to an unsharded
  run's store, partial runs resume from the store, warm re-runs are pure
  replay, and the CLI ``repro experiment`` path round-trips through a
  ResultStore.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main
from repro.engine import Engine, ResultStore, jsonify
from repro.experiments.pipeline import (
    MissingRecordError,
    assemble_from_store,
    compile_experiment,
    execute_plan,
    run_experiment_pipeline,
)
from repro.experiments.registry import EXPERIMENTS, run_experiment

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "data", "experiments_golden_small.json"
)
ALL_IDS = sorted(EXPERIMENTS, key=lambda e: int(e[1:]))


@pytest.fixture(scope="module")
def golden() -> dict:
    with open(GOLDEN_PATH, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _approx_equal(actual, expected, rel=1e-9) -> bool:
    """Recursive equality with relative tolerance on floats (notes stay exact)."""
    if isinstance(expected, dict):
        return (
            isinstance(actual, dict)
            and actual.keys() == expected.keys()
            and all(_approx_equal(actual[k], expected[k], rel) for k in expected)
        )
    if isinstance(expected, list):
        return (
            isinstance(actual, list)
            and len(actual) == len(expected)
            and all(_approx_equal(a, e, rel) for a, e in zip(actual, expected))
        )
    if isinstance(expected, float) and isinstance(actual, (int, float)):
        return actual == pytest.approx(expected, rel=rel)
    return actual == expected


def _store_lines(path: str) -> list[str]:
    with open(path, "r", encoding="utf-8") as handle:
        return sorted(line for line in handle if line.strip())


class TestGoldenValues:
    @pytest.mark.parametrize("experiment_id", ALL_IDS)
    def test_small_scale_report_matches_pre_pipeline_values(self, experiment_id, golden):
        report = jsonify(run_experiment(experiment_id, scale="small", seed=0).as_dict())
        assert _approx_equal(report, golden[experiment_id]), (
            f"{experiment_id} drifted from its pre-pipeline golden values"
        )


class TestCompile:
    def test_plans_have_tagged_jobs(self):
        plan = compile_experiment("E1", scale="small", seed=0)
        assert plan.experiment_id == "E1"
        assert len(plan.jobs) == 3
        for job in plan.jobs:
            assert dict(job.spec.tags)["experiment"] == "E1"
            assert dict(job.spec.tags)["scale"] == "small"

    def test_proof_machinery_experiments_compile_to_zero_jobs(self):
        for experiment_id in ("E9", "E10"):
            plan = compile_experiment(experiment_id, scale="small", seed=0)
            assert plan.jobs == ()
            assert execute_plan(plan).report is not None

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError, match="scale"):
            compile_experiment("E1", scale="huge")

    def test_shard_jobs_stride(self):
        plan = compile_experiment("E7", scale="small", seed=0)
        tags = [job.tag for job in plan.jobs]
        assert [j.tag for j in plan.shard_jobs(0, 2)] == tags[0::2]
        assert [j.tag for j in plan.shard_jobs(1, 2)] == tags[1::2]
        assert plan.shard_jobs(4, 5) == ()
        with pytest.raises(ValueError):
            plan.shard_jobs(2, 2)

    def test_store_keys_stable_across_compilations(self):
        first = compile_experiment("E7", scale="small", seed=3)
        second = compile_experiment("E7", scale="small", seed=3)
        assert [j.store_key() for j in first.jobs] == [j.store_key() for j in second.jobs]
        # and idempotent on one plan instance (keys must not drift per call)
        assert [j.store_key() for j in first.jobs] == [j.store_key() for j in first.jobs]


class TestExecutionInvariance:
    def test_multi_worker_report_identical_to_serial(self):
        serial = run_experiment("E1", scale="small", seed=0)
        pooled = run_experiment("E1", scale="small", seed=0, engine=Engine(workers=2))
        assert jsonify(pooled.as_dict()) == jsonify(serial.as_dict())

    def test_sharded_stores_merge_byte_identical_and_assemble(self, tmp_path):
        scale, seed = "small", 3
        reference_store = ResultStore(tmp_path / "reference")
        reference = run_experiment_pipeline(
            "E7", scale, seed, engine=Engine(store=reference_store)
        )
        assert reference.report is not None

        shard_dirs = []
        for index in range(2):
            shard_dir = tmp_path / f"shard{index}"
            run = run_experiment_pipeline(
                "E7", scale, seed,
                engine=Engine(store=ResultStore(shard_dir)),
                shard=(index, 2),
            )
            assert run.report is None
            assert len(run.batches) == 2  # E7 small has 4 jobs
            shard_dirs.append(shard_dir)

        merged = ResultStore(tmp_path / "merged")
        merge_report = merged.merge(*shard_dirs)
        assert merge_report.records == 4
        assert merge_report.pending_shards == 0

        reference_store.compact()
        assert _store_lines(merged.path) == _store_lines(reference_store.path)

        plan = compile_experiment("E7", scale, seed)
        assembled = assemble_from_store(plan, merged)
        assert jsonify(assembled.as_dict()) == jsonify(reference.report.as_dict())

    def test_partial_run_resumes_from_store(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        shard = run_experiment_pipeline(
            "E1", "small", 0, engine=Engine(store=store), shard=(0, 2)
        )
        assert all(not batch.from_cache for batch in shard.batches.values())

        full = run_experiment_pipeline("E1", "small", 0, engine=Engine(store=store))
        assert full.report is not None
        for tag, batch in full.batches.items():
            assert batch.from_cache == (tag in shard.batches)
        assert jsonify(full.report.as_dict()) == jsonify(
            run_experiment("E1", scale="small", seed=0).as_dict()
        )

    def test_warm_store_rerun_is_pure_replay(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        cold = run_experiment_pipeline("E7", "small", 0, engine=Engine(store=store))
        assert cold.num_cached == 0
        warm = run_experiment_pipeline("E7", "small", 0, engine=Engine(store=store))
        assert warm.num_cached == len(warm.plan.jobs)
        assert jsonify(warm.report.as_dict()) == jsonify(cold.report.as_dict())


class TestStoreRecords:
    def test_records_carry_experiment_tags(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        run = run_experiment_pipeline("E1", "small", 0, engine=Engine(store=store))
        assert run.report is not None
        for job in run.plan.jobs:
            record = store.get(job.store_key())
            assert record is not None
            assert record["tags"]["experiment"] == "E1"
            assert record["tags"]["point"] == job.tag

    def test_missing_record_raises_with_job_name(self, tmp_path):
        plan = compile_experiment("E1", "small", 0)
        with pytest.raises(MissingRecordError, match="n=50"):
            assemble_from_store(plan, ResultStore(tmp_path / "empty"))

    def test_empty_shard_still_touches_store(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        run = run_experiment_pipeline(
            "E1", "small", 0, engine=Engine(store=store), shard=(4, 5)
        )
        assert run.batches == {}
        assert os.path.exists(store.path)
        # and an empty store file is a legal merge source
        merged = ResultStore(tmp_path / "merged")
        assert merged.merge(tmp_path / "store").records == 0


class TestExperimentCLI:
    def test_run_prints_report_and_writes_json(self, tmp_path, capsys, golden):
        json_path = tmp_path / "report.json"
        rc = main(
            ["experiment", "E1", "--results-dir", str(tmp_path / "store"),
             "--json", str(json_path)]
        )
        assert rc == 0
        assert "E1: Theorem 1 bound" in capsys.readouterr().out
        with open(json_path, "r", encoding="utf-8") as handle:
            assert _approx_equal(json.load(handle), golden["E1"])

    def test_rerun_is_served_from_store(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        assert main(["experiment", "E7", "--results-dir", store_dir]) == 0
        capsys.readouterr()
        assert main(["experiment", "E7", "--results-dir", store_dir]) == 0
        assert "served from the result store" in capsys.readouterr().out

    def test_shard_and_merge_round_trip(self, tmp_path, capsys):
        scale_args = ["--scale", "small", "--seed", "3"]
        for index in range(2):
            rc = main(
                ["experiment", "E7", *scale_args, "--shard", f"{index}/2",
                 "--results-dir", str(tmp_path / f"shard{index}")]
            )
            assert rc == 0
        merged_json = tmp_path / "merged.json"
        rc = main(
            ["experiment", "E7", *scale_args,
             "--results-dir", str(tmp_path / "merged"),
             "--merge", str(tmp_path / "shard0"), str(tmp_path / "shard1"),
             "--json", str(merged_json)]
        )
        assert rc == 0
        capsys.readouterr()

        reference_json = tmp_path / "reference.json"
        rc = main(
            ["experiment", "E7", *scale_args,
             "--results-dir", str(tmp_path / "reference"),
             "--json", str(reference_json)]
        )
        assert rc == 0
        with open(merged_json) as a, open(reference_json) as b:
            assert json.load(a) == json.load(b)

    def test_merge_with_missing_shard_fails_loudly(self, tmp_path, capsys):
        rc = main(
            ["experiment", "E7", "--results-dir", str(tmp_path / "merged"), "--merge"]
        )
        assert rc == 1
        assert "assembly failed" in capsys.readouterr().err

    def test_shard_requires_results_dir(self, capsys):
        rc = main(["experiment", "E7", "--shard", "0/2"])
        assert rc == 2
        assert "--results-dir" in capsys.readouterr().err

    def test_shard_and_merge_mutually_exclusive(self, tmp_path, capsys):
        rc = main(
            ["experiment", "E7", "--shard", "0/2", "--merge",
             "--results-dir", str(tmp_path / "store")]
        )
        assert rc == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_zero_job_experiment_runs_plain(self, capsys):
        assert main(["experiment", "E9"]) == 0
        assert "E9: Expansion quantities" in capsys.readouterr().out
