"""Compare two ``BENCH_engine.json`` reports and gate on speedup regressions.

CI runs this after the quick benchmark: the previous successful run's report
is downloaded as an artifact and compared against the fresh one.  Each
benchmark's ``speedup`` ratio (fast path vs baseline kernel) must not fall
more than ``--max-regression`` (default 30%) below the previous value, or
the step fails.  A missing baseline (first run, expired artifact) passes
with a notice — the gate only ever compares real measurements.

Beyond the gate, ``--history PATH`` appends the fresh report's speedups as
one JSONL line to a perf-trajectory log (``benchmarks/BENCH_history.jsonl``
is the tracked one), so the repo itself records how the fast paths evolve
across pushes instead of relying on expiring CI artifacts.

Usage::

    python benchmarks/compare_bench.py \
        --baseline previous/BENCH_engine.json \
        --current BENCH_engine.json \
        --max-regression 0.30 \
        --history benchmarks/BENCH_history.jsonl
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time


def load_report(path: str) -> dict:
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def compare(baseline: dict, current: dict, max_regression: float) -> list[str]:
    """Regression messages (empty = gate passes)."""
    failures = []
    baseline_benchmarks = baseline.get("benchmarks", {})
    current_benchmarks = current.get("benchmarks", {})
    shared = sorted(set(baseline_benchmarks) & set(current_benchmarks))
    if not shared:
        print("no shared benchmarks between baseline and current; nothing to gate")
        return failures
    for name in shared:
        before = float(baseline_benchmarks[name]["speedup"])
        after = float(current_benchmarks[name]["speedup"])
        drop = 0.0 if before <= 0 else (before - after) / before
        status = "FAIL" if drop > max_regression else "ok"
        change = f"({-drop:+.1%} change)"
        print(f"{name}: speedup x{before:.2f} -> x{after:.2f} {change} [{status}]")
        if drop > max_regression:
            failures.append(
                f"{name}: speedup fell {drop:.1%} (x{before:.2f} -> x{after:.2f}), "
                f"more than the allowed {max_regression:.0%}"
            )
    return failures


def history_entry(report: dict, now: float) -> dict:
    """One perf-trajectory JSONL line for ``report``."""
    return {
        "timestamp": now,
        "date": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(now)),
        "commit": os.environ.get("GITHUB_SHA"),
        "quick": bool(report.get("quick")),
        "speedups": {
            name: float(entry["speedup"])
            for name, entry in sorted(report.get("benchmarks", {}).items())
        },
    }


def append_history(path: str, report: dict) -> dict:
    """Append the report's speedups to the JSONL trajectory at ``path``."""
    entry = history_entry(report, time.time())
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", default=None,
        help="previous BENCH_engine.json (omit to skip the regression gate)",
    )
    parser.add_argument("--current", required=True, help="fresh BENCH_engine.json")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        help="largest tolerated fractional speedup drop (default 0.30)",
    )
    parser.add_argument(
        "--history", default=None, metavar="PATH",
        help="append the current report's speedups to this JSONL trajectory",
    )
    args = parser.parse_args()

    current = load_report(args.current)
    if args.history:
        entry = append_history(args.history, current)
        print(f"appended {len(entry['speedups'])} speedup(s) to {args.history}")

    if args.baseline is None:
        print("no --baseline given; skipping the regression gate")
        return 0
    if not os.path.exists(args.baseline):
        print(f"no baseline at {args.baseline}; skipping the regression gate")
        return 0
    baseline = load_report(args.baseline)
    if bool(baseline.get("quick")) != bool(current.get("quick")):
        print("baseline and current used different sizes; skipping the regression gate")
        return 0
    failures = compare(baseline, current, args.max_regression)
    if failures:
        for failure in failures:
            print(f"regression: {failure}", file=sys.stderr)
        return 1
    print("benchmark regression gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
