"""Engine benchmark — vectorized kernel vs the set-based loop, plus caching.

The acceptance bar for the engine subsystem: on a 256-node edge-MEG the
vectorized flooding kernel must produce *bit-identical* samples to the
set-based loop on shared seeds while running measurably faster, and the
engine must return bit-identical samples at any worker count.  The result
store must serve identical re-runs from cache.
"""

from __future__ import annotations

import time

from bench_utils import run_once

from repro.engine import Engine, ResultStore, TrialSpec
from repro.meg.edge_meg import EdgeMEG

NODES = 256
TRIALS = 40
SEED = 0


def _spec() -> TrialSpec:
    model = EdgeMEG(NODES, p=4.0 / NODES, q=0.5)
    return TrialSpec.from_model(model, num_trials=TRIALS, seed=SEED)


def _best_time(engine: Engine, spec: TrialSpec, repeats: int = 3) -> tuple[float, tuple]:
    best = float("inf")
    samples = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = engine.run(spec)
        best = min(best, time.perf_counter() - started)
        samples = result.flooding_times
    return best, samples


def test_engine_vectorized_kernel_speedup(benchmark):
    set_time, set_samples = _best_time(Engine(backend="set"), _spec())
    vec_time, vec_samples = run_once(
        benchmark, _best_time, Engine(backend="vectorized"), _spec()
    )
    print()
    print(f"set-based loop:     {set_time * 1e3:8.1f} ms")
    print(f"vectorized kernel:  {vec_time * 1e3:8.1f} ms  "
          f"(speedup x{set_time / vec_time:.2f})")

    # Identical samples on shared seeds, and a measurable speedup.
    assert vec_samples == set_samples
    assert vec_time < set_time


def test_engine_worker_count_invariance():
    serial = Engine(workers=1).run(_spec())
    parallel = Engine(workers=4).run(_spec())
    assert serial.flooding_times == parallel.flooding_times


def test_engine_result_store_roundtrip(tmp_path):
    store = ResultStore(tmp_path)
    engine = Engine(store=store)
    first = engine.run(_spec())
    second = engine.run(_spec())
    assert not first.from_cache
    assert second.from_cache
    assert first.flooding_times == second.flooding_times
    # A fresh store instance reads the same entry back from disk.
    reloaded = Engine(store=ResultStore(tmp_path)).run(_spec())
    assert reloaded.from_cache
    assert reloaded.flooding_times == first.flooding_times
