"""Engine benchmark — fast-path kernels vs the set-based loop, plus caching.

The acceptance bar for the engine fast paths:

* on a 256-node edge-MEG the vectorized flooding kernel must produce
  *bit-identical* samples to the set-based loop on shared seeds while running
  measurably faster, and the engine must return bit-identical samples at any
  worker count;
* a node-MEG flooding sweep and a mobility-model flooding sweep at
  ``n >= 256`` must run at least 5x faster through the fast path than
  through the set-based loop, with exact agreement;
* the sparse CSR kernel must beat the dense kernel on a sparse
  ``n >= 2048`` snapshot, again with exact agreement;
* the bit-packed kernel must beat the dense kernel at least 3x on an
  ``n >= 2048`` prepacked snapshot, with exact agreement;
* the realization-batch kernel must beat per-trial execution at least 3x on
  a wide node-MEG batch, with exact agreement, and ``backend="auto"`` must
  route that shape to it;
* the result store must serve identical re-runs from cache.

Run under pytest for the assertions, or execute the module directly to write
a machine-readable ``BENCH_engine.json`` for the CI perf-trajectory artifact::

    python benchmarks/bench_engine.py --output BENCH_engine.json [--quick]
"""

from __future__ import annotations

import json
import time
from dataclasses import replace

import networkx as nx

from bench_utils import run_once

from repro.engine import (
    NUMBA_AVAILABLE,
    Engine,
    ResultStore,
    StoppingRule,
    TrialSpec,
    resolve_backend,
)
from repro.util.stats import halfwidth, summarize
from repro.telemetry import core as telemetry
from repro.telemetry import trace as tracectx
from repro.graphs.grid import grid_graph
from repro.markov.builders import random_walk_on_graph
from repro.meg.base import DynamicGraph, StaticGraphProcess
from repro.meg.edge_meg import EdgeMEG
from repro.meg.node_meg import NodeMEG
from repro.mobility.random_walk import RandomWalkMobility

NODES = 256
TRIALS = 40
SEED = 0


def _spec() -> TrialSpec:
    model = EdgeMEG(NODES, p=4.0 / NODES, q=0.5)
    return TrialSpec.from_model(model, num_trials=TRIALS, seed=SEED)


def _node_meg(num_nodes: int) -> NodeMEG:
    chain = random_walk_on_graph(grid_graph(4)).lazy(0.3)
    return NodeMEG(
        num_nodes,
        chain,
        lambda a, b: abs(a[0] - b[0]) + abs(a[1] - b[1]) <= 1,
    )


def _mobility(num_nodes: int) -> RandomWalkMobility:
    # The representative geometric model of the paper's introduction, in the
    # sparse regime (grid side ~ sqrt(n), constant radius).
    grid_side = max(2, int(round(num_nodes**0.5)))
    return RandomWalkMobility(num_nodes, grid_side=grid_side, radius=1.5)


class _FrozenSnapshot(StaticGraphProcess):
    """Static process with precomputed dense/CSR adjacency.

    Removes snapshot-construction costs entirely, so the sparse-vs-dense
    comparison measures the kernels alone.
    """

    def __init__(self, graph: nx.Graph) -> None:
        super().__init__(graph)
        self._dense = DynamicGraph.adjacency_matrix(self)
        self._sparse = DynamicGraph.sparse_adjacency(self)

    def adjacency_matrix(self):
        return self._dense

    def sparse_adjacency(self):
        return self._sparse


def _sparse_snapshot(num_nodes: int) -> _FrozenSnapshot:
    graph = nx.gnm_random_graph(num_nodes, 3 * num_nodes, seed=7)
    graph.add_edges_from(nx.path_graph(num_nodes).edges())  # keep connected
    return _FrozenSnapshot(graph)


def _batch_node_meg(num_nodes: int) -> NodeMEG:
    # The realization-batch regime: a small node-MEG (4-state chain) whose
    # per-trial rounds are dominated by Python dispatch, not NumPy work.
    chain = random_walk_on_graph(grid_graph(2)).lazy(0.3)
    return NodeMEG(
        num_nodes,
        chain,
        lambda a, b: abs(a[0] - b[0]) + abs(a[1] - b[1]) <= 1,
    )


def _best_time(engine: Engine, spec: TrialSpec, repeats: int = 3) -> tuple[float, tuple]:
    best = float("inf")
    samples = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = engine.run(spec)
        best = min(best, time.perf_counter() - started)
        samples = result.flooding_times
    return best, samples


def _compare_backends(
    spec_factory, backends: tuple[str, ...], repeats: int = 3
) -> dict[str, float]:
    """Best wall-clock per backend; asserts bit-identical samples throughout."""
    timings: dict[str, float] = {}
    reference = None
    for backend in backends:
        elapsed, samples = _best_time(
            Engine(backend=backend), spec_factory(), repeats=repeats
        )
        timings[backend] = elapsed
        if reference is None:
            reference = samples
        else:
            assert samples == reference, f"{backend} kernel diverged from {backends[0]}"
    return timings


def test_engine_vectorized_kernel_speedup(benchmark):
    set_time, set_samples = _best_time(Engine(backend="set"), _spec())
    vec_time, vec_samples = run_once(
        benchmark, _best_time, Engine(backend="vectorized"), _spec()
    )
    print()
    print(f"set-based loop:     {set_time * 1e3:8.1f} ms")
    print(f"vectorized kernel:  {vec_time * 1e3:8.1f} ms  "
          f"(speedup x{set_time / vec_time:.2f})")

    # Identical samples on shared seeds, and a measurable speedup.
    assert vec_samples == set_samples
    assert vec_time < set_time


def test_node_meg_fast_path_speedup():
    # The set-based loop rebuilds the n x n adjacency cache every step; the
    # fast path floods through the state-level reach mask and never touches
    # the matrix.  Acceptance: >= 5x at n >= 256 with exact agreement.
    def spec() -> TrialSpec:
        return TrialSpec.from_model(_node_meg(512), num_trials=8, seed=3)

    timings = _compare_backends(spec, ("set", "auto"))
    speedup = timings["set"] / timings["auto"]
    print()
    print(f"node-MEG n=512:  set {timings['set'] * 1e3:8.1f} ms   "
          f"fast path {timings['auto'] * 1e3:8.1f} ms   (speedup x{speedup:.1f})")
    assert speedup >= 5.0


def test_mobility_batched_sweep_speedup():
    # Batched-source worst-case sweep on the random-walk mobility model: the
    # fast path floods all sampled sources of a realization in one matrix
    # pass per step (shared snapshot work), the set-based loop pays the
    # per-source Python unions.  Acceptance: >= 5x at n >= 256.
    def spec() -> TrialSpec:
        return TrialSpec.from_model(
            _mobility(512), num_trials=2, num_sources=16, seed=1
        )

    timings = _compare_backends(spec, ("set", "auto"), repeats=3)
    speedup = timings["set"] / timings["auto"]
    print()
    print(f"mobility n=512 (16-source batch):  set {timings['set'] * 1e3:8.1f} ms   "
          f"fast path {timings['auto'] * 1e3:8.1f} ms   (speedup x{speedup:.1f})")
    assert speedup >= 5.0


def test_sparse_kernel_beats_dense_on_sparse_snapshot():
    # On a large sparse snapshot the CSR matvec does O(m) work per step
    # where the dense kernel touches the n x n matrix.  Acceptance: sparse
    # faster than dense at n >= 2048 with exact agreement (set included).
    def spec() -> TrialSpec:
        return TrialSpec.from_model(_sparse_snapshot(4096), num_trials=3, seed=0)

    timings = _compare_backends(spec, ("set", "vectorized", "sparse"), repeats=2)
    print()
    print(f"sparse snapshot n=4096:  set {timings['set'] * 1e3:8.1f} ms   "
          f"dense {timings['vectorized'] * 1e3:8.1f} ms   "
          f"sparse {timings['sparse'] * 1e3:8.1f} ms   "
          f"(sparse vs dense x{timings['vectorized'] / timings['sparse']:.1f})")
    assert timings["sparse"] < timings["vectorized"]


def test_bitset_kernel_speedup():
    # The packed kernel reduces uint64 words (64 adjacency entries each)
    # where the dense kernel reduces bytes.  On a prepacked static snapshot
    # (packing cached by StaticGraphProcess, so rounds measure the word-wise
    # pass alone) the acceptance bar is >= 3x at n >= 2048, exact agreement.
    model = _sparse_snapshot(2048)

    def spec() -> TrialSpec:
        return TrialSpec.from_model(model, num_trials=3, seed=0)

    timings = _compare_backends(spec, ("vectorized", "bitset"), repeats=3)
    speedup = timings["vectorized"] / timings["bitset"]
    print()
    print(f"prepacked snapshot n=2048:  dense {timings['vectorized'] * 1e3:8.1f} ms   "
          f"bitset {timings['bitset'] * 1e3:8.1f} ms   (speedup x{speedup:.1f})")
    assert speedup >= 3.0


def test_realization_batch_speedup():
    # Flooding 512 trials of one small node-MEG as lock-step tensor rounds
    # vs one kernel call per trial.  Acceptance: >= 3x with exact agreement,
    # and backend="auto" must route this shape to the batch kernel (the
    # heuristic never selects a slower kernel on benched shapes).
    model = _batch_node_meg(48)

    def spec() -> TrialSpec:
        return TrialSpec.from_model(model, num_trials=512, seed=3)

    assert resolve_backend("auto", model, num_trials=512) == "batch"
    timings = _compare_backends(spec, ("vectorized", "batch"), repeats=3)
    speedup = timings["vectorized"] / timings["batch"]
    print()
    print(f"node-MEG n=48, 512 trials:  per-trial {timings['vectorized'] * 1e3:8.1f} ms   "
          f"batched {timings['batch'] * 1e3:8.1f} ms   (speedup x{speedup:.1f})")
    assert speedup >= 3.0


def test_jit_csr_exactness():
    # The sparse kernel's frontier expansion routes through repro.engine.jit
    # (numba row loop when the repro[jit] extra is installed, exact NumPy
    # matvec otherwise).  Either path must match the set-based loop; the
    # printed status records which one this environment measured.
    def spec() -> TrialSpec:
        return TrialSpec.from_model(_sparse_snapshot(1024), num_trials=3, seed=0)

    timings = _compare_backends(spec, ("set", "sparse"), repeats=2)
    print()
    print(f"sparse kernel n=1024 (numba {'active' if NUMBA_AVAILABLE else 'absent'}):  "
          f"set {timings['set'] * 1e3:8.1f} ms   sparse {timings['sparse'] * 1e3:8.1f} ms")


def test_engine_worker_count_invariance():
    serial = Engine(workers=1).run(_spec())
    parallel = Engine(workers=4).run(_spec())
    assert serial.flooding_times == parallel.flooding_times


def test_engine_executor_invariance_and_startup():
    """Thread and process pools agree bit-for-bit; report their overheads.

    The timing print tracks pool start-up cost (the thread pool's edge for
    short batches); correctness — not the timing — is the assertion, since
    CI machine load makes pool start-up noisy.
    """
    serial = Engine(workers=1).run(_spec())
    timings = {}
    for executor in ("process", "thread"):
        engine = Engine(workers=4, executor=executor)
        best = min(engine.run(_spec()).elapsed_seconds for _ in range(3))
        timings[executor] = best
        assert engine.run(_spec()).flooding_times == serial.flooding_times
    print(
        f"\nengine 4-worker batch   process pool {timings['process'] * 1e3:8.1f} ms   "
        f"thread pool {timings['thread'] * 1e3:8.1f} ms"
    )


def _noop_primitive_seconds(calls: int = 200_000) -> float:
    """Per-call cost of the disabled telemetry primitives (span/count/timing)."""
    assert telemetry.active() is None
    started = time.perf_counter()
    for _ in range(calls):
        with telemetry.span("bench"):
            pass
        telemetry.count("bench")
        telemetry.timing("bench", 1.0)
    return (time.perf_counter() - started) / (3 * calls)


def _telemetry_timings(tmp_path) -> dict[str, float]:
    """Best engine wall-clock with telemetry disabled vs enabled (writing)."""
    disabled, reference = _best_time(Engine(backend="vectorized"), _spec())
    telemetry.enable(str(tmp_path), process="bench")
    try:
        enabled, samples = _best_time(Engine(backend="vectorized"), _spec())
    finally:
        telemetry.disable()
    assert samples == reference, "telemetry changed the samples"
    return {"disabled": disabled, "enabled": enabled}


def test_telemetry_noop_overhead(tmp_path):
    # The ISSUE 6 acceptance bar: instrumentation with telemetry *disabled*
    # must cost under 2% of an engine run.  The disabled primitives are one
    # module-global load plus a None check; even a (generous) estimate of
    # 100 primitive calls per trial must fit the 2% budget, and enabling
    # telemetry must not change the samples.
    timings = _telemetry_timings(tmp_path)
    per_call = _noop_primitive_seconds()
    estimated = per_call * 100 * TRIALS
    budget = 0.02 * timings["disabled"]
    print()
    print(f"engine run, telemetry disabled: {timings['disabled'] * 1e3:8.1f} ms")
    print(f"engine run, telemetry enabled:  {timings['enabled'] * 1e3:8.1f} ms  "
          f"(ratio x{timings['enabled'] / timings['disabled']:.3f})")
    print(f"disabled primitive: {per_call * 1e9:6.0f} ns/call -> "
          f"{estimated / timings['disabled']:.3%} of the run at 100 calls/trial")
    assert estimated < budget, (
        f"no-op telemetry would cost {estimated / timings['disabled']:.1%} "
        f"of the run (budget 2%)"
    )


def _stamp_call_seconds(calls: int = 200_000) -> float:
    """Per-record cost of the trace stamp inside an active scope."""
    with tracectx.attach_trace(tracectx.mint_trace_id()):
        started = time.perf_counter()
        for _ in range(calls):
            tracectx.stamp({"kind": "event", "name": "bench"})
        return (time.perf_counter() - started) / calls


def _trace_timings(tmp_path) -> dict[str, float]:
    """Best telemetry-enabled engine wall-clock, untraced vs inside a trace."""
    telemetry.enable(str(tmp_path), process="bench")
    try:
        untraced, reference = _best_time(Engine(backend="vectorized"), _spec())
        with tracectx.attach_trace(tracectx.mint_trace_id()):
            traced, samples = _best_time(Engine(backend="vectorized"), _spec())
    finally:
        telemetry.disable()
    assert samples == reference, "the trace scope changed the samples"
    return {"untraced": untraced, "traced": traced}


def test_trace_overhead(tmp_path):
    # The ISSUE 10 acceptance bar: trace propagation must cost under 2% of a
    # telemetry-enabled engine run.  The stamp is one thread-local lookup
    # plus a setdefault per *written record*, and records are per span/event
    # (a handful per chunk), not per trial — an estimate of 10 stamped
    # records per trial is an order of magnitude above the real rate and
    # must still fit the 2% budget; attaching a trace must not change the
    # samples.
    timings = _trace_timings(tmp_path)
    per_call = _stamp_call_seconds()
    estimated = per_call * 10 * TRIALS
    budget = 0.02 * timings["untraced"]
    print()
    print(f"engine run, telemetry on, untraced: {timings['untraced'] * 1e3:8.1f} ms")
    print(f"engine run, telemetry on, traced:   {timings['traced'] * 1e3:8.1f} ms  "
          f"(ratio x{timings['traced'] / timings['untraced']:.3f})")
    print(f"trace stamp: {per_call * 1e9:6.0f} ns/record -> "
          f"{estimated / timings['untraced']:.3%} of the run at 10 records/trial")
    assert estimated < budget, (
        f"trace stamping would cost {estimated / timings['untraced']:.1%} "
        f"of the run (budget 2%)"
    )


def _adaptive_specs(budget: int, target: float) -> tuple[TrialSpec, TrialSpec]:
    """A fixed-budget spec and its adaptive twin (same model, same seed)."""
    fixed = TrialSpec.from_model(
        EdgeMEG(64, p=4.0 / 64, q=0.5), num_trials=budget, seed=SEED
    )
    rule = StoppingRule(target_halfwidth=target, min_trials=32, check_every=32)
    adaptive = replace(fixed, stopping=rule)
    return fixed, adaptive


def test_adaptive_sweep_trial_savings():
    # Sequential stopping must hit the CI target with strictly fewer trials
    # than the fixed budget, on samples that are an exact prefix of the
    # fixed run's — adaptivity never changes what is simulated, only how
    # much of it.
    budget, target = 512, 0.05
    fixed, adaptive = _adaptive_specs(budget, target)
    fixed_result = Engine().run(fixed)
    adaptive_result = Engine().run(adaptive)
    print()
    print(f"fixed budget:    {fixed_result.num_trials:>5} trials")
    print(f"adaptive:        {adaptive_result.num_trials:>5} trials  "
          f"(x{fixed_result.num_trials / adaptive_result.num_trials:.2f} fewer)")
    assert adaptive_result.stopped_early
    assert adaptive_result.num_trials < fixed_result.num_trials
    realized = adaptive_result.num_trials
    assert adaptive_result.flooding_times == fixed_result.flooding_times[:realized]
    achieved = halfwidth(
        summarize(adaptive_result.flooding_times).std, realized, 0.95
    )
    assert achieved <= target
    # Determinism of the stop point across worker counts.
    again = Engine(workers=4).run(adaptive)
    assert again.num_trials == realized


def test_engine_result_store_roundtrip(tmp_path):
    store = ResultStore(tmp_path)
    engine = Engine(store=store)
    first = engine.run(_spec())
    second = engine.run(_spec())
    assert not first.from_cache
    assert second.from_cache
    assert first.flooding_times == second.flooding_times
    # A fresh store instance reads the same entry back from disk.
    reloaded = Engine(store=ResultStore(tmp_path)).run(_spec())
    assert reloaded.from_cache
    assert reloaded.flooding_times == first.flooding_times


# --------------------------------------------------------------------- #
# machine-readable benchmark (CI perf-trajectory artifact)
# --------------------------------------------------------------------- #
def run_benchmark_suite(quick: bool = False) -> dict:
    """Time every backend comparison and return a JSON-able report."""
    node_meg_n = 256 if quick else 512
    mobility_n = 256 if quick else 512
    snapshot_n = 2048 if quick else 4096
    repeats = 2

    report: dict = {"quick": quick, "benchmarks": {}}

    timings = _compare_backends(
        lambda: TrialSpec.from_model(
            EdgeMEG(NODES, p=4.0 / NODES, q=0.5),
            num_trials=10 if quick else TRIALS,
            seed=SEED,
        ),
        ("set", "vectorized"),
        repeats=repeats,
    )
    report["benchmarks"]["edge_meg_single_source"] = {
        "num_nodes": NODES,
        "milliseconds": {k: v * 1e3 for k, v in timings.items()},
        "speedup": timings["set"] / timings["vectorized"],
    }

    timings = _compare_backends(
        lambda: TrialSpec.from_model(_node_meg(node_meg_n), num_trials=8, seed=3),
        ("set", "auto"),
        repeats=repeats,
    )
    report["benchmarks"]["node_meg_single_source"] = {
        "num_nodes": node_meg_n,
        "milliseconds": {k: v * 1e3 for k, v in timings.items()},
        "speedup": timings["set"] / timings["auto"],
    }

    timings = _compare_backends(
        lambda: TrialSpec.from_model(
            _mobility(mobility_n), num_trials=2, num_sources=16, seed=1
        ),
        ("set", "auto"),
        repeats=repeats,
    )
    report["benchmarks"]["mobility_batched_sources"] = {
        "num_nodes": mobility_n,
        "num_sources": 16,
        "milliseconds": {k: v * 1e3 for k, v in timings.items()},
        "speedup": timings["set"] / timings["auto"],
    }

    timings = _compare_backends(
        lambda: TrialSpec.from_model(_sparse_snapshot(snapshot_n), num_trials=3, seed=0),
        ("vectorized", "sparse"),
        repeats=repeats,
    )
    report["benchmarks"]["sparse_snapshot_kernels"] = {
        "num_nodes": snapshot_n,
        "milliseconds": {k: v * 1e3 for k, v in timings.items()},
        "speedup": timings["vectorized"] / timings["sparse"],
    }

    bitset_model = _sparse_snapshot(snapshot_n)
    timings = _compare_backends(
        lambda: TrialSpec.from_model(bitset_model, num_trials=3, seed=0),
        ("vectorized", "bitset"),
        repeats=repeats,
    )
    report["benchmarks"]["bitset_vs_dense"] = {
        "num_nodes": snapshot_n,
        "milliseconds": {k: v * 1e3 for k, v in timings.items()},
        "speedup": timings["vectorized"] / timings["bitset"],
    }

    batch_trials = 128 if quick else 512
    batch_model = _batch_node_meg(48)
    timings = _compare_backends(
        lambda: TrialSpec.from_model(batch_model, num_trials=batch_trials, seed=3),
        ("vectorized", "batch"),
        repeats=repeats,
    )
    report["benchmarks"]["realization_batch"] = {
        "num_nodes": 48,
        "num_trials": batch_trials,
        "milliseconds": {k: v * 1e3 for k, v in timings.items()},
        "speedup": timings["vectorized"] / timings["batch"],
    }

    jit_model = _sparse_snapshot(1024)
    timings = _compare_backends(
        lambda: TrialSpec.from_model(jit_model, num_trials=3, seed=0),
        ("vectorized", "sparse"),
        repeats=repeats,
    )
    # The trajectory point tracks the JIT-capable path: which implementation
    # (numba row loop / NumPy matvec fallback) this run measured, and how the
    # sparse kernel sits against dense on the same snapshot.
    report["benchmarks"]["jit_csr"] = {
        "num_nodes": 1024,
        "numba_available": NUMBA_AVAILABLE,
        "milliseconds": {k: v * 1e3 for k, v in timings.items()},
        "speedup": timings["vectorized"] / timings["sparse"],
    }

    # Adaptive-sampling trajectory: trials the stopping rule needs to hit the
    # CI target vs the fixed budget, plus the wall-clock of each run.  The
    # realized trial count is deterministic (seed + rule only), so the
    # "trial_speedup" column is noise-free across CI runs.
    budget = 256 if quick else 512
    target = 0.08 if quick else 0.05
    fixed_spec, adaptive_spec = _adaptive_specs(budget, target)
    fixed_time, _ = _best_time(Engine(), fixed_spec, repeats=repeats)
    adaptive_time, _ = _best_time(Engine(), adaptive_spec, repeats=repeats)
    realized = Engine().run(adaptive_spec).num_trials
    report["benchmarks"]["adaptive_sweep"] = {
        "num_nodes": 64,
        "budget": budget,
        "target_halfwidth": target,
        "realized_trials": realized,
        "milliseconds": {"fixed": fixed_time * 1e3, "adaptive": adaptive_time * 1e3},
        "trial_speedup": budget / realized,
        "speedup": fixed_time / adaptive_time,
    }

    # Telemetry overhead trajectory: the enabled/disabled wall-clock ratio
    # (≈1.0; the gate would flag enabled runs suddenly costing ~30% extra)
    # plus the disabled primitive cost, tracked in nanoseconds.
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        timings = _telemetry_timings(tmp)
    report["benchmarks"]["telemetry_overhead"] = {
        "num_nodes": NODES,
        "milliseconds": {k: v * 1e3 for k, v in timings.items()},
        "noop_primitive_nanoseconds": _noop_primitive_seconds() * 1e9,
        "speedup": timings["enabled"] / timings["disabled"],
    }

    # Trace-propagation trajectory: the traced/untraced wall-clock ratio of
    # a telemetry-enabled run (≈1.0) plus the per-record stamp cost.
    with tempfile.TemporaryDirectory() as tmp:
        timings = _trace_timings(tmp)
    report["benchmarks"]["trace_overhead"] = {
        "num_nodes": NODES,
        "milliseconds": {k: v * 1e3 for k, v in timings.items()},
        "stamp_nanoseconds": _stamp_call_seconds() * 1e9,
        "speedup": timings["traced"] / timings["untraced"],
    }
    return report


def main() -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_engine.json")
    parser.add_argument(
        "--quick", action="store_true", help="smaller sizes for CI smoke runs"
    )
    args = parser.parse_args()
    report = run_benchmark_suite(quick=args.quick)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    for name, entry in report["benchmarks"].items():
        times = ", ".join(f"{k} {v:.1f}ms" for k, v in entry["milliseconds"].items())
        print(f"{name}: {times} (speedup x{entry['speedup']:.1f})")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
