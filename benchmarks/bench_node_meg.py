"""E2 — Theorem 3 on an explicit node-MEG (co-location connection map)."""

from __future__ import annotations

from bench_utils import run_once

from repro.experiments.registry import run_node_meg
from repro.experiments.report import format_table


def test_e2_node_meg_bound_envelope(benchmark):
    report = run_once(benchmark, run_node_meg, "small", 0)
    print()
    print(format_table(report))

    measured = report.column_values("measured_mean")
    bounds = report.column_values("theorem3_bound")
    etas = report.column_values("eta")

    for value, bound in zip(measured, bounds):
        assert value <= bound
    # The co-location connection over a complete meeting graph is pairwise
    # independent in the stationary regime: eta stays ~1 across the sweep.
    assert all(eta <= 1.5 for eta in etas)
    # Denser populations (larger n, same meeting space) flood faster.
    assert measured[-1] <= measured[0] * 1.5
