"""Shared configuration for the benchmark harness.

Each benchmark regenerates one experiment of DESIGN.md's per-experiment index
(E1–E10 plus the ablations) at the "small" scale, checks the qualitative
shape the paper predicts, and records the wall-clock cost via
pytest-benchmark.  Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
for path in (_SRC, _HERE):
    if path not in sys.path:
        sys.path.insert(0, path)
