"""E9 — Expansion machinery of Lemmas 9-11 (the proof engine of Theorem 1)."""

from __future__ import annotations

from bench_utils import run_once

from repro.experiments.registry import run_expansion
from repro.experiments.report import format_table


def test_e9_expansion_quantities(benchmark):
    report = run_once(benchmark, run_expansion, "small", 0)
    print()
    print(format_table(report))

    rows = {row["quantity"]: row for row in report.rows}
    # deg_{i,A}: the measured mean tracks the |A| * alpha prediction.  (No
    # quantile check here: a single node's degree into A has mean ~2, so its
    # 10% quantile is legitimately 0 for a sizeable fraction of seeds.)
    degree_row = rows["deg_{i,A} (|A|=n/2)"]
    assert degree_row["measured_mean"] >= 0.5 * degree_row["predicted_mean"]
    assert degree_row["measured_mean"] <= 2.0 * degree_row["predicted_mean"]
    # deg_{A,B} and spread: measured means are within a factor 2 of the
    # independent-edge predictions, and the lower quantiles do not collapse —
    # the set-level concentration Lemmas 9-11 need.
    for name, row in rows.items():
        assert row["measured_mean"] >= 0.4 * row["predicted_mean"], name
        if name != "deg_{i,A} (|A|=n/2)":
            assert row["measured_q10"] >= 0.2 * row["measured_mean"], name
