"""Extension — the four-state refined edge-MEG of [5] under the Appendix-A bound.

The paper notes its generalised edge-MEG analysis covers arbitrary hidden
per-edge chains, citing the four-state (stable/volatile x up/down) refinement
of [5] that the earlier two-state analysis could not handle.  This benchmark
compares a classic edge-MEG and a four-state edge-MEG with the *same*
stationary density: the four-state links have longer memory (larger mixing
time), so flooding is slower, and the general bound — which scales with the
hidden-chain mixing time — tracks that ordering while the density-only prior
bound of [10] cannot distinguish the two.
"""

from __future__ import annotations

import numpy as np
from bench_utils import run_once

from repro.baselines.edge_meg_bound import classic_edge_meg_prior_bound
from repro.core.bounds import edge_meg_general_bound
from repro.core.flooding import flooding_time_samples
from repro.markov.mixing import mixing_time
from repro.meg.edge_meg import EdgeMEG, four_state_edge_meg


def _run_comparison():
    n = 100
    trials = 6
    # Classic chain with alpha = 0.5 and fast mixing.
    classic = EdgeMEG(n, p=0.02 / n * n, q=0.02)  # p = q = 0.02 -> alpha = 0.5
    classic_alpha = classic.stationary_edge_probability()
    classic_tmix = mixing_time(classic.edge_chain())
    classic_times = flooding_time_samples(classic, trials, rng=0)

    # Four-state chain with the same stationary density (symmetric up/down)
    # but long stable periods -> much slower mixing.
    refined = four_state_edge_meg(n, p_up=0.02, p_down=0.02, p_stabilize=0.05, p_destabilize=0.005)
    refined_alpha = refined.stationary_edge_probability()
    # The stable states give the chain long memory: allow the exact mixing-time
    # search enough head-room (the default cap is sized for small fast chains).
    refined_tmix = mixing_time(refined.chain, max_steps=20_000)
    refined_times = flooding_time_samples(refined, trials, rng=0)

    return {
        "classic_alpha": classic_alpha,
        "refined_alpha": refined_alpha,
        "classic_tmix": classic_tmix,
        "refined_tmix": refined_tmix,
        "classic_mean": float(np.mean(classic_times)),
        "refined_mean": float(np.mean(refined_times)),
        "classic_general_bound": edge_meg_general_bound(n, classic_tmix, classic_alpha),
        "refined_general_bound": edge_meg_general_bound(n, refined_tmix, refined_alpha),
        "prior_bound": classic_edge_meg_prior_bound(n, 0.02),
    }


def test_four_state_edge_meg_vs_classic(benchmark):
    row = run_once(benchmark, _run_comparison)
    print()
    for key, value in row.items():
        print(f"{key}: {value}")

    # Same stationary density by construction.
    assert abs(row["classic_alpha"] - row["refined_alpha"]) < 0.05
    # The refined chain mixes much more slowly ...
    assert row["refined_tmix"] >= 4 * row["classic_tmix"]
    # ... and dissemination is indeed slower on the refined model.
    assert row["refined_mean"] >= row["classic_mean"]
    # The general (mixing-time aware) bound ranks the two models correctly.
    assert row["refined_general_bound"] > row["classic_general_bound"]
    # Both measurements respect their bounds.
    assert row["classic_mean"] <= row["classic_general_bound"]
    assert row["refined_mean"] <= row["refined_general_bound"]
