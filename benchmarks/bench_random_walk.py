"""E4 — Random walk mobility on the grid (calibration baseline)."""

from __future__ import annotations

from bench_utils import run_once

from repro.experiments.registry import run_random_walk
from repro.experiments.report import format_table


def test_e4_random_walk_mobility(benchmark):
    report = run_once(benchmark, run_random_walk, "small", 0)
    print()
    print(format_table(report))

    measured = report.column_values("measured_mean")
    lower = report.column_values("lower_bound")

    # Flooding cannot beat the geometric lower bound by more than the slack
    # the (r + v)-per-step argument leaves on a tiny grid.
    for value, bound in zip(measured, lower):
        assert value >= bound / 4.0
    # Larger populations on proportionally larger grids take longer.
    assert measured[-1] >= measured[0]
