"""Ablation — the exponent of the (1/(n alpha) + beta) term (Section 5).

The paper suspects the square in ``(1/(n alpha) + beta)^2`` can be improved
under mild assumptions.  This ablation estimates the *empirical* exponent:
for a classic edge-MEG (beta = 1) it sweeps the sparsity ``x = 1/(n alpha)``
over a decade and fits the log-log slope of the measured flooding time
against ``x``.  The fitted exponent consistently lands near 1 — evidence in
favour of the conjecture that the quadratic dependence is an artefact of the
analysis.
"""

from __future__ import annotations

import numpy as np
from bench_utils import run_once

from repro.core.flooding import flooding_time_samples
from repro.meg.edge_meg import EdgeMEG
from repro.util.mathutils import loglog_slope


def _run_exponent_ablation():
    n = 120
    q = 0.5
    rows = []
    for sparsity in (2.0, 4.0, 8.0, 16.0):  # x = 1/(n alpha) ~ sparsity * q
        alpha_target = 1.0 / (n * sparsity)
        p = alpha_target * q / (1.0 - alpha_target)
        model = EdgeMEG(n, p=p, q=q)
        x = 1.0 / (n * model.stationary_edge_probability())
        mean = float(np.mean(flooding_time_samples(model, 6, rng=1)))
        rows.append({"x=1/(n*alpha)": x, "measured_mean": mean})
    xs = [row["x=1/(n*alpha)"] for row in rows]
    ys = [row["measured_mean"] for row in rows]
    return rows, loglog_slope(xs, ys)


def test_ablation_density_term_exponent(benchmark):
    rows, exponent = run_once(benchmark, _run_exponent_ablation)
    print()
    for row in rows:
        print(row)
    print(f"fitted exponent of the density term: {exponent:.2f} (bound uses 2)")

    # The flooding time grows with sparsity, with an exponent clearly below
    # the bound's 2 — consistent with the paper's conjecture in Section 5.
    measured = [row["measured_mean"] for row in rows]
    assert measured[-1] > measured[0]
    assert 0.3 <= exponent <= 1.8
