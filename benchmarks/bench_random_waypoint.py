"""E3 — Random waypoint in the sparse regime (Corollary 4 / Section 4.1).

The paper's first waypoint bound predicts, in the sparse regime
``L ~ sqrt(n)``, ``r = Theta(1)``, ``v = Theta(1)``, a flooding time of
``Õ(sqrt(n) / v_max)`` — almost matching the trivial ``Omega(sqrt(n)/v)``
lower bound.  The benchmark checks both sides: the measured flooding time
scales like ``sqrt(n)`` (log-log slope ~0.5) and stays within a small factor
of the lower bound.
"""

from __future__ import annotations

from bench_utils import run_once

from repro.experiments.registry import run_random_waypoint
from repro.experiments.report import format_table
from repro.util.mathutils import loglog_slope


def test_e3_waypoint_sparse_regime(benchmark):
    report = run_once(benchmark, run_random_waypoint, "small", 0)
    print()
    print(format_table(report))

    sizes = report.column_values("n")
    measured = report.column_values("measured_mean")
    bounds = report.column_values("waypoint_bound")
    ratios = report.column_values("ratio_to_lower")

    for value, bound in zip(measured, bounds):
        assert value <= bound
    # Scaling shape: flooding time ~ sqrt(n) up to polylog factors.
    slope = loglog_slope(sizes, measured)
    assert 0.25 <= slope <= 0.85
    # Near-tightness: within a small constant factor of the trivial lower bound.
    assert max(ratios) <= 8.0
