"""E10 — Density/independence conditions of the concrete models.

Reproduces the checks that make Theorem 1 applicable to the concrete models:
Corollary 4's positional-uniformity conditions for the random waypoint
(conditions (a) and (b)), Fact 2 / Lemma 15 for node-MEGs, and the
independent-edge case of edge-MEGs.
"""

from __future__ import annotations

from bench_utils import run_once

from repro.experiments.registry import run_stationarity
from repro.experiments.report import format_table


def test_e10_stationarity_conditions(benchmark):
    report = run_once(benchmark, run_stationarity, "small", 0)
    print()
    print(format_table(report))

    values = {
        (row["model"], row["quantity"]): row["value"] for row in report.rows
    }
    # Corollary 4 condition (a): the waypoint density is bounded by a constant
    # multiple of the uniform density (delta ~ 2.25 for the analytic form).
    assert 1.0 <= values[("random waypoint", "delta (analytic density)")] <= 4.0
    # Condition (b): a constant fraction of the square is high-density.
    assert values[("random waypoint", "lambda (analytic density)")] > 0.05
    # The empirical density reproduces the same constants approximately.
    assert values[("random waypoint", "delta (empirical density)")] <= 6.0

    # Node-MEG: the Monte-Carlo alpha estimate matches the exact P_NM and the
    # measured correlation ratio is far below the conservative 17*eta constant.
    exact_alpha = values[("co-location node-MEG", "alpha = P_NM (exact)")]
    mc_alpha = values[("co-location node-MEG", "alpha (Monte-Carlo)")]
    assert abs(mc_alpha - exact_alpha) <= 0.6 * exact_alpha + 0.05
    assert values[("co-location node-MEG", "beta ratio (Monte-Carlo)")] < values[
        ("co-location node-MEG", "beta = 17 eta (Lemma 15)")
    ]

    # Edge-MEG: alpha = p/(p+q), independent edges give beta exactly 1.
    assert values[("classic edge-MEG", "beta (independent edges)")] == 1.0
