"""Ablation — epoch length vs mixing time (DESIGN.md, design-choice ablations).

Theorem 1 consumes an epoch length ``M`` at least the mixing time of the
process, and its bound scales linearly in ``M``; the paper's conclusions
conjecture that the dependency on the mixing time might be removable.  This
ablation makes the gap concrete: the *measured* flooding time of a fixed
edge-MEG does not change when we (artificially) analyse it with longer
epochs, while the Theorem-1 bound grows linearly with the chosen ``M``.
"""

from __future__ import annotations

import numpy as np
from bench_utils import run_once

from repro.core.bounds import theorem1_bound
from repro.core.flooding import flooding_time_samples
from repro.core.stationarity import exact_parameters
from repro.markov.mixing import mixing_time
from repro.meg.edge_meg import EdgeMEG


def _run_epoch_ablation():
    n = 100
    model = EdgeMEG(n, p=1.0 / n, q=0.5)
    alpha, beta = exact_parameters(model)
    base_epoch = max(1, mixing_time(model.edge_chain()))
    measured = float(np.mean(flooding_time_samples(model, 6, rng=0)))
    rows = []
    for multiplier in (1, 2, 4, 8):
        epoch = base_epoch * multiplier
        rows.append(
            {
                "epoch_multiplier": multiplier,
                "epoch_length": epoch,
                "measured_mean": measured,
                "theorem1_bound": theorem1_bound(n, epoch, alpha, beta),
            }
        )
    return rows


def test_ablation_epoch_length(benchmark):
    rows = run_once(benchmark, _run_epoch_ablation)
    print()
    for row in rows:
        print(row)

    bounds = [row["theorem1_bound"] for row in rows]
    measured = [row["measured_mean"] for row in rows]
    # The measurement is independent of the analysis epoch...
    assert len(set(measured)) == 1
    # ...while the bound grows linearly with it.
    assert bounds[-1] == bounds[0] * rows[-1]["epoch_multiplier"]
