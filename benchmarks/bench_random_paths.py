"""E5 — Random paths on a grid (Corollary 5, shortest-path instance).

The discussion after Corollary 5 shows that when every pair of points has a
single feasible simple path and the family is δ-regular with δ = polylog(n),
the flooding time is ``O(D polylog n)``; the benchmark checks the measured
time grows roughly linearly with the grid diameter and stays below the
Corollary-5 bound.
"""

from __future__ import annotations

from bench_utils import run_once

from repro.experiments.registry import run_random_paths
from repro.experiments.report import format_table
from repro.util.mathutils import loglog_slope


def test_e5_random_paths_on_grid(benchmark):
    report = run_once(benchmark, run_random_paths, "small", 0)
    print()
    print(format_table(report))

    diameters = report.column_values("diameter")
    measured = report.column_values("measured_mean")
    bounds = report.column_values("corollary5_bound")
    lower = report.column_values("diameter_lower_bound")

    for value, bound in zip(measured, bounds):
        assert value <= bound
    for value, low in zip(measured, lower):
        assert value >= low / 4.0
    # Shape: measured flooding time grows with the diameter (slope positive,
    # well below quadratic).
    slope = loglog_slope(diameters, measured)
    assert 0.2 <= slope <= 2.0
