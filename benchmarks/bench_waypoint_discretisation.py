"""Cross-validation — continuous waypoint vs its explicit node-MEG discretisation.

Section 4.1 argues the continuous random waypoint *is* a node-MEG once the
square is discretised, and that this is how Theorem 3 / Corollary 4 apply to
it.  This benchmark builds the explicit discretised chain (states =
(current cell, destination cell)), computes its exact mixing time, P_NM and
eta, instantiates the corresponding NodeMEG, and compares its flooding
behaviour against the continuous simulator configured with the matching
physical parameters.
"""

from __future__ import annotations

import numpy as np
from bench_utils import run_once

from repro.core.flooding import flooding_time_samples
from repro.core.bounds import theorem3_bound
from repro.mobility.random_waypoint import RandomWaypoint
from repro.mobility.waypoint_chain import build_waypoint_chain, waypoint_chain_mixing_time


def _run_cross_validation():
    resolution = 5
    side = float(resolution)  # cell size 1, so one cell per step = speed 1
    radius = 1.1
    n = 40
    trials = 4

    discrete = build_waypoint_chain(resolution, side=side, radius=radius)
    node_meg = discrete.to_node_meg(n)
    t_mix = waypoint_chain_mixing_time(discrete)
    p_nm = node_meg.edge_probability()
    eta = node_meg.eta()
    discrete_times = flooding_time_samples(node_meg, trials, rng=0)

    continuous = RandomWaypoint(n, side=side, radius=radius, v_min=1.0)
    continuous_times = flooding_time_samples(continuous, trials, rng=0)

    return {
        "resolution": resolution,
        "t_mix": t_mix,
        "P_NM": p_nm,
        "eta": eta,
        "theorem3_bound": theorem3_bound(n, t_mix, p_nm, max(eta, 1.0)),
        "discrete_mean": float(np.mean(discrete_times)),
        "discrete_max": float(np.max(discrete_times)),
        "continuous_mean": float(np.mean(continuous_times)),
    }


def test_waypoint_discretisation_cross_validation(benchmark):
    row = run_once(benchmark, _run_cross_validation)
    print()
    for key, value in row.items():
        print(f"{key}: {value}")

    # The discretised chain mixes in Theta(L / v) steps: a handful for L = 5, v = 1.
    assert 1 <= row["t_mix"] <= 40
    # The correlation parameter eta of the waypoint node-MEG is a small constant,
    # as Corollary 4 predicts via its uniformity conditions.
    assert row["eta"] <= 3.0
    # Theorem 3's bound dominates the measured discrete flooding time.
    assert row["discrete_max"] <= row["theorem3_bound"]
    # Discrete and continuous simulations agree within a factor ~2.5 on the mean.
    ratio = row["discrete_mean"] / row["continuous_mean"]
    assert 0.4 <= ratio <= 2.5
