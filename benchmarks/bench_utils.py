"""Helpers shared by the benchmark modules."""

from __future__ import annotations


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are Monte-Carlo sweeps, so a single round is both
    representative and keeps the benchmark suite fast.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
