"""E1 — Theorem 1 on a controlled sparse edge-MEG.

Regenerates the sweep behind the paper's headline bound
``O(M (1/(n alpha) + beta)^2 log^2 n)``: measured flooding times across
``n`` must stay below the bound and grow no faster than it.
"""

from __future__ import annotations

from bench_utils import run_once

from repro.experiments.registry import run_theorem1
from repro.experiments.report import format_table
from repro.util.mathutils import loglog_slope


def test_e1_theorem1_bound_envelope(benchmark):
    report = run_once(benchmark, run_theorem1, "small", 0)
    print()
    print(format_table(report))

    sizes = report.column_values("n")
    measured = report.column_values("measured_mean")
    bounds = report.column_values("theorem1_bound")

    # The bound (with constant 1) dominates every measured point.
    for value, bound in zip(measured, bounds):
        assert value <= bound

    # Shape: the bound grows at least as fast as the measurement in n.
    assert loglog_slope(sizes, bounds) >= loglog_slope(sizes, measured) - 0.2
