"""E6 — k-augmented grids: Corollary 6 vs the meeting-time bound of [15].

The paper's comparison: on a k-augmented grid the mixing time of a single
random walk drops (roughly like 1/k^2) while the meeting time of two walks —
the quantity driving the prior bound of [15] — stays essentially that of the
plain grid.  The benchmark verifies who-wins: mixing time falls much faster
than meeting time as k grows, and the measured flooding time falls with k.
"""

from __future__ import annotations

from bench_utils import run_once

from repro.experiments.registry import run_augmented_grid
from repro.experiments.report import format_table


def test_e6_augmented_grid_vs_meeting_time(benchmark):
    report = run_once(benchmark, run_augmented_grid, "small", 0)
    print()
    print(format_table(report))

    ks = report.column_values("k")
    mixing = report.column_values("T_mix")
    meeting = report.column_values("meeting_time")
    measured = report.column_values("measured_mean")

    assert ks[0] == 1
    mixing_drop = mixing[0] / mixing[-1]
    meeting_drop = meeting[0] / max(meeting[-1], 1e-9)
    # Who wins: the paper's T_mix-driven bound improves with k markedly faster
    # than the meeting-time bound of [15].
    assert mixing_drop >= 2.0
    assert mixing_drop >= 1.5 * meeting_drop
    # The measured flooding time also improves as k grows.
    assert measured[-1] <= measured[0]
