"""E8 — Randomised gossip protocols reduced to flooding (Section 5)."""

from __future__ import annotations

from bench_utils import run_once

from repro.experiments.registry import run_gossip
from repro.experiments.report import format_table


def test_e8_gossip_vs_flooding(benchmark):
    report = run_once(benchmark, run_gossip, "small", 0)
    print()
    print(format_table(report))

    rows = {row["protocol"]: row for row in report.rows}
    flooding = rows["flooding"]["mean_completion"]
    gossip_half = rows["gossip p=0.5"]["mean_completion"]
    epidemic = rows["SI epidemic p=0.5"]["mean_completion"]

    # Removing half the edges at random costs only a small constant slowdown —
    # the virtual dynamic graph is still (M, alpha/2, beta)-stationary.
    assert flooding <= gossip_half <= 6 * flooding
    assert flooding <= epidemic <= 6 * flooding
    # Every protocol completed on every trial (max recorded).
    assert all(row["max_completion"] < 10_000 for row in report.rows)
