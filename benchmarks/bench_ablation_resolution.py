"""Ablation — discretisation resolution of the random waypoint (footnote 3).

Section 4.1 turns the continuous waypoint into a node-MEG by discretising the
square with an ``m x m`` grid and claims the resolution does not affect the
obtained bound provided it is fine enough.  This ablation sweeps the snapping
resolution of the simulator and checks the measured flooding time stabilises
(and matches the continuous simulation) once the cell size drops below the
transmission radius.
"""

from __future__ import annotations

import math

import numpy as np
from bench_utils import run_once

from repro.core.flooding import flooding_time_samples
from repro.mobility.random_waypoint import RandomWaypoint


def _run_resolution_ablation():
    n = 50
    side = math.sqrt(n)
    radius = 1.0
    trials = 4
    rows = []
    continuous = RandomWaypoint(n, side=side, radius=radius, v_min=1.0)
    continuous_mean = float(np.mean(flooding_time_samples(continuous, trials, rng=0)))
    rows.append({"resolution": "continuous", "measured_mean": continuous_mean})
    for resolution in (4, 8, 16, 32, 64):
        model = RandomWaypoint(
            n, side=side, radius=radius, v_min=1.0, snap_resolution=resolution
        )
        mean = float(np.mean(flooding_time_samples(model, trials, rng=0)))
        rows.append({"resolution": resolution, "measured_mean": mean})
    return rows


def test_ablation_discretisation_resolution(benchmark):
    rows = run_once(benchmark, _run_resolution_ablation)
    print()
    for row in rows:
        print(row)

    by_resolution = {row["resolution"]: row["measured_mean"] for row in rows}
    continuous = by_resolution["continuous"]
    # Fine discretisations agree with the continuous simulation within 50%.
    for resolution in (16, 32, 64):
        assert abs(by_resolution[resolution] - continuous) <= 0.5 * continuous + 2.0
    # The two finest resolutions agree with each other (the value has stabilised).
    assert abs(by_resolution[64] - by_resolution[32]) <= 0.5 * by_resolution[32] + 2.0
