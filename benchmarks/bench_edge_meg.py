"""E7 — Classic edge-MEG: the paper's general bound vs the prior bound of [10].

Appendix A derives ``O(T_mix (1/(n alpha) + 1)^2 log^2 n)`` for generalised
edge-MEGs and compares it with the almost tight ``O(log n / log(1 + n p))``
of [10], concluding the general bound is almost tight whenever ``q >= n p``.
The benchmark sweeps ``p`` at fixed ``q`` and checks (i) both bounds dominate
the measurement, (ii) the measured time decreases in ``p``, and (iii) the
two bounds stay within a polylog factor inside the tight region.
"""

from __future__ import annotations

from bench_utils import run_once

from repro.experiments.registry import run_edge_meg
from repro.experiments.report import format_table
from repro.util.mathutils import logn_factor


def test_e7_edge_meg_bounds(benchmark):
    report = run_once(benchmark, run_edge_meg, "small", 0)
    print()
    print(format_table(report))

    measured = report.column_values("measured_mean")
    general = report.column_values("general_bound")
    prior = report.column_values("prior_bound_[10]")
    tight = report.column_values("tight_region(q>=np)")
    n = report.rows[0]["n"]

    for value, bound in zip(measured, general):
        assert value <= bound
    # Denser edge-MEGs flood faster (monotone sweep in p).
    assert measured[0] >= measured[-1]
    # Inside the tight region the two bounds agree up to a polylog factor.
    for row_general, row_prior, is_tight in zip(general, prior, tight):
        if is_tight:
            assert row_general <= 4 * logn_factor(n, 2) * row_prior
